// Package trainer simulates one end-to-end LLM training iteration on a
// heterogeneous-NIC topology: compute, the pipeline schedule, data-parallel
// gradient synchronization, and the optimizer step, all sharing one
// discrete-event fabric so that every contention effect the paper measures
// (Tables 1, 3, 4; Figures 4–7) emerges from the same mechanism.
//
// The computational model: per-stage compute time comes from the Megatron
// FLOPs formula at a fixed compute-only MFU; every byte of communication —
// inter-stage activations/gradients, gradient reduce-scatter, parameter
// all-gather — travels as flows on the netsim fabric, contending with
// everything else in flight. The iteration ends when every data-parallel
// group has reduced, gathered, and stepped.
package trainer

import (
	"fmt"
	"math"

	"holmes/internal/collective"
	"holmes/internal/comm"
	"holmes/internal/engine"
	"holmes/internal/model"
	"holmes/internal/netsim"
	"holmes/internal/parallel"
	"holmes/internal/partition"
	"holmes/internal/pipeline"
	"holmes/internal/scenario"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

// Config describes one simulated training run.
type Config struct {
	Topo *topology.Topology
	Spec model.Spec
	// TensorSize and PipelineSize fix t and p; d = N/(t·p).
	TensorSize   int
	PipelineSize int
	Framework    Framework
	// Opt overrides the framework profile when non-nil (ablations).
	Opt *Options
	// Calib overrides calibration constants when non-nil.
	Calib *Calibration
	// World supplies prebuilt communicators (with their Assignment) so
	// callers that already constructed them — the planner, the pipeline
	// search — do not pay for a rebuild per simulation. It must match the
	// topology's device count, the degrees, and the options' NIC
	// selection; Simulate rejects mismatches rather than guessing.
	World *comm.World
	// Engine supplies the shared execution resources: when World is nil
	// the communicators come from (and land in) the engine's LRU cache,
	// and the engine's FullRecompute knob selects the netsim oracle
	// unless an explicit Calib overrides it. Nil means build communicators
	// ad hoc and use the incremental rebalancer.
	Engine *engine.Engine
	// AbortAbove, when positive, stops the event simulation as soon as
	// the virtual clock strictly exceeds it and returns ErrAboveBound:
	// the caller has a complete plan at that iteration time, so a
	// candidate still running past it has strictly lost (the clock is
	// monotone). Iterations finishing at or before the deadline are
	// reported exactly. Zero simulates to completion.
	AbortAbove float64
	// Scenario scripts cluster events (NIC degradation, node failure,
	// background traffic) onto the iteration's fabric at their simulated
	// instants, so the report measures step time under the events rather
	// than on a pristine fabric. Nil or empty is a guaranteed no-op: the
	// run is bit-identical to one without a scenario. The plan itself
	// (partition, NIC selection) is made on pre-fault knowledge — reacting
	// to events is the replanner's job (core.Planner.ReplanOn).
	Scenario *scenario.Scenario
}

// Report is the outcome of one simulated iteration.
type Report struct {
	Framework Framework
	Env       string
	Degrees   parallel.Degrees
	Partition partition.Result
	Micro     int

	// IterSeconds is one training iteration's wall time.
	IterSeconds float64
	// TFLOPS is achieved teraFLOP/s per GPU (the paper's metric).
	TFLOPS float64
	// Throughput is samples/s (the paper's metric).
	Throughput float64
	// ReduceScatterSeconds is the wall time of gradient reduce-scatter for
	// the slowest data-parallel group (Figure 4's metric).
	ReduceScatterSeconds float64
	// PipelineSeconds is the pipeline (compute + P2P) portion.
	PipelineSeconds float64
	// Scenario labels the event timeline the iteration ran under
	// (empty = pristine fabric); ScenarioEvents counts the timeline
	// events that fired before the iteration completed.
	Scenario       string
	ScenarioEvents int
}

// EnvLabel derives the paper's environment name from a topology.
func EnvLabel(topo *topology.Topology) string {
	if topo.NumClusters() > 1 {
		types := map[topology.NICType]bool{}
		for _, c := range topo.Clusters {
			types[c.NICType] = true
		}
		if len(types) > 1 {
			return string(topology.EnvHybrid)
		}
	}
	return topo.Clusters[0].NICType.String()
}

// Simulate runs one training iteration and reports the paper's metrics.
func Simulate(cfg Config) (Report, error) {
	if cfg.Topo == nil {
		return Report{}, fmt.Errorf("trainer: nil topology")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return Report{}, err
	}
	opt := DefaultOptions(cfg.Framework)
	if cfg.Opt != nil {
		opt = *cfg.Opt
	}
	calib := DefaultCalibration()
	if cfg.Calib != nil {
		calib = *cfg.Calib
	} else if cfg.Engine != nil && cfg.Engine.FullRecompute() {
		calib.Net.FullRecompute = true
	}

	n := cfg.Topo.NumDevices()
	t, p := cfg.TensorSize, cfg.PipelineSize
	deg, err := parallel.TileDegrees(n, t, p)
	if err != nil {
		return Report{}, err
	}
	var assign *parallel.Assignment
	var world *comm.World
	if cfg.World != nil {
		world, assign = cfg.World, cfg.World.Assign
		if assign == nil || assign.Degrees != deg || assign.N != n || world.Selection != opt.NICSelection {
			return Report{}, fmt.Errorf("trainer: prebuilt world does not match config (degrees %+v, selection %v)", deg, opt.NICSelection)
		}
		if world.Topo != cfg.Topo && world.Topo.Fingerprint() != cfg.Topo.Fingerprint() {
			return Report{}, fmt.Errorf("trainer: prebuilt world was built on a different topology")
		}
	} else if cfg.Engine != nil {
		assign, world, err = cfg.Engine.World(cfg.Topo, deg, opt.NICSelection)
		if err != nil {
			return Report{}, err
		}
	} else {
		assign, err = parallel.New(n, cfg.Topo.GPUsPerNode, deg)
		if err != nil {
			return Report{}, err
		}
		world, err = comm.BuildWorld(cfg.Topo, assign, opt.NICSelection)
		if err != nil {
			return Report{}, err
		}
	}
	m, err := cfg.Spec.MicroBatches(deg.D)
	if err != nil {
		return Report{}, err
	}

	dpPerLayer := stageDPPerLayer(cfg, calib, assign, world)
	part, err := makePartition(cfg, opt, calib, assign, m, dpPerLayer)
	if err != nil {
		return Report{}, err
	}

	// Per-stage compute times per micro-batch (forward = 1/3 of the F+B
	// work, backward = 2/3). The vocabulary projection runs on the last
	// stage.
	effFLOPS := calib.PeakTFLOPS * 1e12 * calib.ComputeMFU
	tf := make([]float64, p)
	tb := make([]float64, p)
	layerWork := func(layers int) float64 {
		return cfg.Spec.FLOPsForLayers(layers, cfg.Spec.MicroBatch) / float64(t)
	}
	vocabWork := (cfg.Spec.FLOPsPerIteration() - cfg.Spec.FLOPsForLayers(cfg.Spec.Layers, cfg.Spec.GlobalBatch)) /
		float64(cfg.Spec.GlobalBatch) * float64(cfg.Spec.MicroBatch) / float64(t)
	for s := 0; s < p; s++ {
		work := layerWork(part.Layers[s])
		if s == p-1 {
			work += vocabWork
		}
		// Tensor-parallel collectives: Megatron's f/g operators all-reduce
		// the layer activations twice per layer in forward and twice in
		// backward across the tensor group. Tensor groups live inside one
		// node (§2.4), so the cost is analytic ring time on the intra-node
		// interconnect — NVLink does not contend with the NIC fabric — but
		// it is not free, which is what keeps the joint (t, p) search
		// honest: t > 1 splits compute at the price of 4 all-reduces per
		// layer per micro-batch. Zero when t = 1 (every paper cell).
		tpRing := tpRingSeconds(cfg, calib, assign, s)
		tf[s] = work/3/effFLOPS + 2*float64(part.Layers[s])*tpRing
		tb[s] = 2*work/3/effFLOPS + 2*float64(part.Layers[s])*tpRing
		if opt.OverlappedOptimizer {
			// Comm–compute interference: the NCCL kernels of overlapped
			// reduce-scatter occupy SMs and HBM bandwidth while the
			// backward pass runs, so hiding communication is not free. The
			// surcharge is proportional to the hidden communication time,
			// spread over the backward passes that hide it.
			hidden := (1 - exposedDPFraction(opt, calib, m)) * dpPerLayer[s] * float64(part.Layers[s])
			tb[s] += calib.InterferenceFactor * hidden / float64(m)
		}
	}

	eng := sim.NewEngine()
	fab := netsim.New(eng, cfg.Topo, calib.Net)

	// Bind the scenario before the pipelines so that, at equal instants,
	// scripted events apply ahead of training events — deterministically.
	// An empty scenario binds to an inert runtime and schedules nothing.
	rt, err := cfg.Scenario.Bind(eng, fab)
	if err != nil {
		return Report{}, err
	}

	st := newIterState(eng, fab, assign, world, part, cfg.Spec, opt, calib, m)
	// When the iteration completes, stop the scenario: open-ended
	// background traffic and events scripted past the end must not keep
	// the engine (or the measurement) alive.
	st.onFinish = rt.Stop
	sched := pipeline.OneFOneB(p, m)
	if opt.GPipeSchedule {
		sched = pipeline.GPipe(p, m)
	}

	// Launch all t·d pipeline groups concurrently on the shared fabric.
	// Groups sharing a node start staggered across one pipeline beat:
	// lockstep starts would make every pipeline's P2P transfer collide on
	// the node NIC each beat, a synchronization artifact real deployments
	// do not sustain (kernel jitter and NCCL chunking de-correlate them).
	actBytes := cfg.Spec.ActivationMessageBytes() / float64(t)
	beat := 0.0
	for s := 0; s < p; s++ {
		if b := tf[s] + tb[s]; b > beat {
			beat = b
		}
	}
	pipesPerNode := cfg.Topo.GPUsPerNode / t
	if pipesPerNode < 1 {
		pipesPerNode = 1
	}
	for _, pg := range world.PPGroups {
		pg := pg
		stagger := beat * float64(pg.Index%pipesPerNode) / float64(pipesPerNode)
		cfgExec := pipeline.ExecConfig{
			Ranks:           pg.Ranks,
			ForwardTime:     tf,
			BackwardTime:    tb,
			ActivationBytes: actBytes,
			Class:           pg.Class,
			OnBackwardDone: func(stage, micro int, now sim.Time) {
				st.backwardDone(pg.Ranks[stage], micro)
			},
			OnDone: func(now sim.Time) { st.pipelineDone(now) },
		}
		if cfg.AbortAbove > 0 {
			// Branch-and-bound projection. A stage executes its remaining
			// ops serially at fixed compute durations, so at every op
			// completion two lower bounds on the iteration end hold:
			//   end ≥ now + remF·tf + remB·tb            (the pipe must drain)
			//   end ≥ now + remB·tb + minTail(stage)     (the stage's DP group
			//       reduces, steps, and gathers only after its last backward)
			// Under the non-overlapped optimizer every group waits for the
			// full flush, so the tail stacks on the whole drain. The moment
			// either bound provably exceeds the incumbent's iteration time
			// the candidate has lost and the engine halts — this fires long
			// before the clock itself reaches the incumbent's time, which is
			// what makes losing cells cheap. The 1e-9 relative slack keeps a
			// product-form projection from out-rounding the simulator's
			// sequential additions: a candidate inside the slack simulates on
			// to the RunUntil deadline and aborts there instead, so the
			// search outcome is unchanged either way.
			tail := make([]float64, p)
			for s := 0; s < p; s++ {
				tail[s] = st.minTail(pg.Ranks[s])
			}
			deadline := cfg.AbortAbove * (1 + 1e-9)
			overlapped := opt.OverlappedOptimizer
			cfgExec.OnOpDone = func(s, remF, remB int, now sim.Time) {
				drain := float64(remF)*tf[s] + float64(remB)*tb[s]
				var lb float64
				if overlapped {
					lb = math.Max(drain, float64(remB)*tb[s]+tail[s])
				} else {
					lb = drain + tail[s]
				}
				if now+lb > deadline {
					eng.Halt()
				}
			}
		}
		ex, err := pipeline.NewExecutor(eng, fab, sched, cfgExec)
		if err != nil {
			return Report{}, err
		}
		eng.At(stagger, ex.Start)
	}
	if cfg.AbortAbove > 0 {
		// Branch-and-bound arm: the caller knows a plan finishing in
		// AbortAbove seconds, and the event clock only moves forward, so
		// the moment the clock passes it this candidate has strictly lost
		// — stop paying for events that cannot change the search outcome.
		// An iteration finishing exactly at the deadline still completes
		// (RunUntil fires events at the deadline), so ties simulate fully
		// and tie-breaking stays bit-identical.
		eng.RunUntil(cfg.AbortAbove)
		if !st.finished() {
			if eng.Halted() || eng.Pending() > 0 {
				return Report{}, ErrAboveBound
			}
			return Report{}, fmt.Errorf("trainer: iteration did not complete (deadlock in simulation)")
		}
	} else {
		eng.Run()
	}
	if !st.finished() {
		return Report{}, fmt.Errorf("trainer: iteration did not complete (deadlock in simulation)")
	}

	iter := st.endTime
	rep := Report{
		Framework:            cfg.Framework,
		Env:                  EnvLabel(cfg.Topo),
		Degrees:              deg,
		Partition:            part,
		Micro:                m,
		IterSeconds:          iter,
		TFLOPS:               cfg.Spec.FLOPsPerIteration() / (iter * float64(n)) / 1e12,
		Throughput:           float64(cfg.Spec.GlobalBatch) / iter,
		ReduceScatterSeconds: st.maxRSTime(),
		PipelineSeconds:      st.pipeEnd,
		Scenario:             cfg.Scenario.String(),
		ScenarioEvents:       rt.Applied(),
	}
	return rep, nil
}

// exposedDPFraction returns the share of a stage's data-parallel
// communication that stays on the critical path as seen by the partition
// planner: the parameter all-gather (never overlapped) plus roughly one
// gradient bucket. With the overlapped optimizer the rest hides behind
// the backward pass; without it, the reduce-scatter still largely hides
// behind the pipeline drain (late stages flush their backwards several
// beats before stage 0 finishes).
func exposedDPFraction(opt Options, calib Calibration, m int) float64 {
	rsShare := calib.GradBytesPerParam / (calib.GradBytesPerParam + calib.ParamBytesPerParam)
	agShare := 1 - rsShare
	return rsShare/float64(m) + agShare
}

// makePartition selects the stage division per the options: uniform, or
// self-adapting (Eq. 4–5) with memory caps from the device memory.
//
// The speed S(c_i) of a stage is its devices' effective per-layer
// throughput in this environment: pure compute, plus the exposed share of
// the stage's data-parallel synchronization on its selected NIC, plus the
// interference cost of whatever synchronization is hidden. Stages on slow
// fabrics are effectively slower, and Eq. 5 shifts layers towards the
// fast clusters.
func makePartition(cfg Config, opt Options, calib Calibration, assign *parallel.Assignment, m int, dpPerLayer []float64) (partition.Result, error) {
	p := assign.P
	if opt.ForcedPartition != nil {
		r := partition.Result{Layers: append([]int(nil), opt.ForcedPartition...), Strategy: "forced"}
		return r, r.Validate(cfg.Spec.Layers)
	}
	if !opt.SelfAdaptingPartition {
		return partition.Uniform(cfg.Spec.Layers, p)
	}
	effFLOPS := calib.PeakTFLOPS * 1e12 * calib.ComputeMFU
	computePerLayer := float64(m) * cfg.Spec.FLOPsForLayers(1, cfg.Spec.MicroBatch) / float64(assign.T) / effFLOPS
	exposed := exposedDPFraction(opt, calib, m)
	interf := 0.0
	if opt.OverlappedOptimizer {
		interf = calib.InterferenceFactor * (1 - exposed)
	}
	// Only part of a stage's exposed DP time lands on the iteration's
	// critical path — the groups' tails overlap each other and the
	// pipeline drain — so the planner damps the DP term rather than
	// charging it in full (charging it fully over-shifts layers towards
	// fast clusters, which the DES punishes through the pipeline beat).
	const dpCriticalShare = 0.5
	stages := make([]partition.Stage, p)
	for s := 0; s < p; s++ {
		// Per-layer tensor-parallel time across all micro-batches (4 ring
		// all-reduces per layer per micro-batch); zero at t = 1.
		tpPerLayer := 4 * float64(m) * tpRingSeconds(cfg, calib, assign, s)
		stages[s] = partition.Stage{
			Speed:     1 / (computePerLayer + tpPerLayer + dpCriticalShare*(exposed+interf)*dpPerLayer[s]),
			MaxLayers: maxLayersForMemory(cfg, assign, s),
		}
	}
	return partition.SelfAdapting(cfg.Spec.Layers, stages, opt.Alpha)
}

// tpRingSeconds returns the wall time of one tensor-parallel ring
// all-reduce of a micro-batch's activation tensor on the stage's
// intra-node interconnect; zero when t = 1.
func tpRingSeconds(cfg Config, calib Calibration, assign *parallel.Assignment, stage int) float64 {
	t := assign.T
	if t <= 1 {
		return 0
	}
	node := cfg.Topo.NodeOf(assign.StageRanks(stage)[0])
	bps := calib.Net.NVLinkBytesPerSec
	if node.Intra == topology.PCIe {
		bps = calib.Net.PCIeBytesPerSec
	}
	bytes := cfg.Spec.ActivationMessageBytes()
	return 2*float64(t-1)/float64(t)*bytes/bps + 2*float64(t-1)*calib.Net.IntraLatency
}

// stageDPPerLayer estimates, for every pipeline stage, the gradient
// reduce-scatter + parameter all-gather seconds one layer costs the
// stage's data-parallel groups on their selected fabric (the slowest ring
// edge governs a ring collective).
func stageDPPerLayer(cfg Config, calib Calibration, assign *parallel.Assignment, world *comm.World) []float64 {
	eng := sim.NewEngine()
	fab := netsim.New(eng, cfg.Topo, calib.Net)
	out := make([]float64, assign.P)
	for s := 0; s < assign.P; s++ {
		g := world.DPGroups[assign.DPRow(assign.StageRanks(s)[0])]
		d := len(g.Ranks)
		if d == 1 {
			continue
		}
		bytes := float64(cfg.Spec.ParamsPerLayer()) / float64(assign.T) *
			(calib.GradBytesPerParam + calib.ParamBytesPerParam)
		perEdge := float64(d-1) / float64(d) * bytes
		worst := 0.0
		for i := range g.Ranks {
			src, dst := g.Ranks[i], g.Ranks[(i+1)%d]
			if bw := fab.PairBandwidth(src, dst, g.Class); bw > 0 {
				if t := perEdge / bw; t > worst {
					worst = t
				}
			}
		}
		out[s] = worst
	}
	return out
}

// maxLayersForMemory finds the largest layer count whose stage memory fits
// the devices of the stage (Mem(N_ci) ≤ DMem(c_i), Eq. 5's constraint).
// Activation memory assumes full recomputation (only layer-boundary
// tensors stay resident), matching how Megatron fits multi-billion-
// parameter stages.
func maxLayersForMemory(cfg Config, assign *parallel.Assignment, stage int) int {
	node := cfg.Topo.NodeOf(assign.StageRanks(stage)[0])
	dmem := node.MemBytesPerGPU
	inflight := int64(assign.P - stage) // 1F1B peak residency
	for l := cfg.Spec.Layers; l >= 1; l-- {
		static := cfg.Spec.StageMemoryBytes(l, assign.D, assign.T, 0, true)
		act := cfg.Spec.ActivationBytesPerLayerRecompute() * int64(l) * inflight / int64(assign.T)
		if static+act <= dmem {
			return l
		}
	}
	return 1
}

// iterState tracks the data-parallel phase across the iteration.
type iterState struct {
	eng    *sim.Engine
	fab    *netsim.Fabric
	assign *parallel.Assignment
	world  *comm.World
	opt    Options
	calib  Calibration
	micro  int

	// Per DP group row: gradient payload, bucket progress, timings.
	groups []*dpGroupState

	pipesLeft int
	pipeEnd   sim.Time
	endTime   sim.Time
	doneCount int
	// onFinish fires once, the moment the iteration completes (all
	// pipelines flushed and all DP groups stepped); the scenario runtime
	// hooks it to stop generating events.
	onFinish func()
}

type dpGroupState struct {
	group       *comm.Group
	gradBytes   float64
	paramBytes  float64
	buckets     int
	microCount  []int // per micro: ranks that finished its backward
	nextBucket  int
	rsInFlight  bool
	readyBucket int // buckets whose gradients are complete
	rsStart     sim.Time
	rsEnd       sim.Time
	rsStarted   bool
	done        bool
}

func newIterState(eng *sim.Engine, fab *netsim.Fabric, assign *parallel.Assignment,
	world *comm.World, part partition.Result, spec model.Spec, opt Options, calib Calibration, m int) *iterState {
	st := &iterState{
		eng: eng, fab: fab, assign: assign, world: world,
		opt: opt, calib: calib, micro: m,
		pipesLeft: len(world.PPGroups),
	}
	for i, g := range world.DPGroups {
		stage := assign.StageOf(g.Ranks[0])
		params := float64(spec.ParamsPerLayer()*int64(part.Layers[stage])) / float64(assign.T)
		buckets := 1
		if opt.OverlappedOptimizer {
			buckets = m
		}
		gs := &dpGroupState{
			group:      world.DPGroups[i],
			gradBytes:  params * calib.GradBytesPerParam * opt.ExtraDPTraffic,
			paramBytes: params * calib.ParamBytesPerParam * opt.ExtraDPTraffic,
			buckets:    buckets,
			microCount: make([]int, m),
		}
		st.groups = append(st.groups, gs)
	}
	return st
}

// backwardDone records a rank's backward completion for micro-batch i and
// releases gradient buckets when every rank of the group has produced
// them. Without the overlapped optimizer, gradient synchronization waits
// for the whole pipeline flush (Megatron's optimizer.step() runs after the
// flush, gated by the tied-embedding all-reduce across stages).
func (st *iterState) backwardDone(rank, micro int) {
	gs := st.groups[st.assign.DPRow(rank)]
	gs.microCount[micro]++
	if gs.microCount[micro] != len(gs.group.Ranks) {
		return
	}
	if st.opt.OverlappedOptimizer {
		gs.readyBucket++
		st.pumpRS(gs)
	}
}

// pumpRS starts the next gradient reduce-scatter bucket if one is ready
// and none is in flight (buckets serialize within a group, as NCCL
// serializes collectives on one communicator).
func (st *iterState) pumpRS(gs *dpGroupState) {
	if gs.rsInFlight || gs.nextBucket >= gs.readyBucket || gs.nextBucket >= gs.buckets {
		return
	}
	if !gs.rsStarted {
		gs.rsStarted = true
		gs.rsStart = st.eng.Now()
	}
	gs.rsInFlight = true
	bytes := gs.gradBytes / float64(gs.buckets)
	collective.RunReduceScatterFluid(st.eng, st.fab, gs.group.Ranks, bytes, gs.group.Class, func() {
		gs.rsInFlight = false
		gs.nextBucket++
		if gs.nextBucket == gs.buckets {
			gs.rsEnd = st.eng.Now()
			st.afterRS(gs)
			return
		}
		st.pumpRS(gs)
	})
}

// afterRS runs the optimizer step on the sharded state, then all-gathers
// the updated fp16 parameters.
func (st *iterState) afterRS(gs *dpGroupState) {
	st.eng.After(st.calib.OptimizerSeconds, func() {
		collective.RunAllGatherFluid(st.eng, st.fab, gs.group.Ranks, gs.paramBytes, gs.group.Class, func() {
			gs.done = true
			st.groupDone()
		})
	})
}

func (st *iterState) pipelineDone(now sim.Time) {
	st.pipesLeft--
	if now > st.pipeEnd {
		st.pipeEnd = now
	}
	if st.pipesLeft == 0 && !st.opt.OverlappedOptimizer {
		// Post-flush gradient synchronization: every group reduces now.
		for _, gs := range st.groups {
			gs.readyBucket = gs.buckets
			st.pumpRS(gs)
		}
	}
	st.maybeFinish()
}

func (st *iterState) groupDone() {
	st.doneCount++
	if st.doneCount == len(st.groups) && st.eng.Now() > st.endTime {
		st.endTime = st.eng.Now()
	}
	st.maybeFinish()
}

func (st *iterState) maybeFinish() {
	if st.finished() && st.onFinish != nil {
		fn := st.onFinish
		st.onFinish = nil
		fn()
	}
}

func (st *iterState) finished() bool {
	return st.doneCount == len(st.groups) && st.pipesLeft == 0
}

// minTail returns a lower bound on the post-backward tail of the rank's
// data-parallel group: the optimizer step, plus — for multi-rank groups —
// the best-case wall time of the final gradient bucket's reduce-scatter
// and the parameter all-gather. A ring collective finishes no earlier than
// its slowest edge, and no edge's flow ever beats that edge's uncontended
// capacity, so the group's worst pair capacity bounds both collectives
// from below even on a pristine fabric.
func (st *iterState) minTail(rank int) float64 {
	gs := st.groups[st.assign.DPRow(rank)]
	d := len(gs.group.Ranks)
	out := st.calib.OptimizerSeconds
	if d == 1 {
		return out
	}
	perEdge := float64(d-1) / float64(d) * (gs.gradBytes/float64(gs.buckets) + gs.paramBytes)
	worst := 0.0
	for i := range gs.group.Ranks {
		src, dst := gs.group.Ranks[i], gs.group.Ranks[(i+1)%d]
		if bw := st.fab.PairBandwidth(src, dst, gs.group.Class); bw > 0 {
			if t := perEdge / bw; t > worst {
				worst = t
			}
		}
	}
	return out + worst
}

func (st *iterState) maxRSTime() float64 {
	worst := 0.0
	for _, gs := range st.groups {
		if d := gs.rsEnd - gs.rsStart; gs.rsStarted && d > worst {
			worst = d
		}
	}
	return worst
}
