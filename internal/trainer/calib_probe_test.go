package trainer

import (
	"testing"

	"holmes/internal/model"
	"holmes/internal/topology"
)

// TestProbeTable1 prints the simulated Table 1 cells; used during
// calibration and kept as a living record (assertions live in
// trainer_test.go and the root bench suite).
func TestProbeTable1(t *testing.T) {
	pg := model.Group(1)
	for _, env := range []topology.EnvName{topology.EnvInfiniBand, topology.EnvRoCE, topology.EnvEthernet, topology.EnvHybrid} {
		topo, err := topology.Env(env, 4)
		if err != nil {
			t.Fatal(err)
		}
		base := BaseOptions()
		rep, err := Simulate(Config{
			Topo: topo, Spec: pg.Spec,
			TensorSize: pg.TensorSize, PipelineSize: pg.PipelineSize,
			Framework: Holmes, Opt: &base,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s TFLOPS=%6.1f Throughput=%7.2f iter=%6.2fs rs=%6.3fs pipe=%6.2fs part=%v",
			env, rep.TFLOPS, rep.Throughput, rep.IterSeconds, rep.ReduceScatterSeconds, rep.PipelineSeconds, rep.Partition)
	}
}
