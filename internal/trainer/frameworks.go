package trainer

import "holmes/internal/comm"

// Framework identifies a training framework behaviour profile. The
// profiles reproduce how each framework schedules communication in a
// heterogeneous NIC environment — the axis the paper's Figure 6/7 and
// Table 4 comparisons vary.
type Framework string

const (
	// Holmes: Automatic NIC Selection, Cross-Cluster Pipeline Parallelism,
	// Self-Adapting Pipeline Partition, Overlapped Distributed Optimizer.
	Holmes Framework = "Holmes"
	// MegatronLM: one unified communication environment (Ethernet as soon
	// as NICs are mixed), uniform partition, no communication overlap.
	MegatronLM Framework = "Megatron-LM"
	// MegatronDeepSpeed: like Megatron-LM plus ZeRO partitioning, whose
	// per-iteration parameter all-gather adds traffic on the same unified
	// (Ethernet) channels — the slowest profile in mixed environments.
	MegatronDeepSpeed Framework = "Megatron-DeepSpeed"
	// MegatronLLaMA: Megatron-LM plus an overlapped distributed optimizer
	// (its "DistributedOptimizer" communication/computation parallelism),
	// still on a unified NIC environment.
	MegatronLLaMA Framework = "Megatron-LLaMA"
)

// Options are the mechanism knobs a framework profile fixes. Individual
// knobs can be overridden after calling DefaultOptions — that is how the
// Table 4 ablations are expressed.
type Options struct {
	// NICSelection: per-group automatic selection (Holmes) or one unified
	// environment (traditional frameworks).
	NICSelection comm.Selection
	// SelfAdaptingPartition enables Eq. 4–5 stage division; otherwise
	// uniform.
	SelfAdaptingPartition bool
	// OverlappedOptimizer buckets gradient reduce-scatter into the
	// backward pass instead of waiting for the flush.
	OverlappedOptimizer bool
	// Alpha is the self-adapting partition hyper-parameter (paper: 1.05).
	Alpha float64
	// GPipeSchedule switches the pipeline schedule from 1F1B to GPipe
	// (ablation only; every real profile uses 1F1B/PipeDream-Flush).
	GPipeSchedule bool
	// ExtraDPTraffic scales data-parallel bytes to model frameworks that
	// move more than one gradient+param payload per iteration (ZeRO's
	// partitioned states on Megatron-DeepSpeed): 1.0 = baseline.
	ExtraDPTraffic float64
	// ForcedPartition, when non-nil, bypasses the partition strategy with
	// an explicit per-stage layer allocation (ablation studies).
	ForcedPartition []int
}

// DefaultOptions returns the behaviour profile of a framework.
func DefaultOptions(f Framework) Options {
	switch f {
	case Holmes:
		return Options{
			NICSelection:          comm.AutoSelection,
			SelfAdaptingPartition: true,
			OverlappedOptimizer:   true,
			Alpha:                 1.05,
			ExtraDPTraffic:        1,
		}
	case MegatronLM:
		return Options{
			NICSelection:   comm.UnifiedSelection,
			Alpha:          1.05,
			ExtraDPTraffic: 1,
		}
	case MegatronDeepSpeed:
		return Options{
			NICSelection:   comm.UnifiedSelection,
			Alpha:          1.05,
			ExtraDPTraffic: 1.6,
		}
	case MegatronLLaMA:
		return Options{
			NICSelection:        comm.UnifiedSelection,
			OverlappedOptimizer: true,
			Alpha:               1.05,
			ExtraDPTraffic:      1,
		}
	default:
		return Options{NICSelection: comm.AutoSelection, Alpha: 1.05, ExtraDPTraffic: 1}
	}
}

// AllFrameworks lists the compared frameworks in the paper's Figure 6
// order.
var AllFrameworks = []Framework{MegatronDeepSpeed, MegatronLM, MegatronLLaMA, Holmes}

// BaseOptions returns Holmes with only its placement components active —
// Cross-Cluster Pipeline Parallelism and Automatic NIC Selection, uniform
// partition, no optimizer overlap. This is the configuration behind the
// paper's Tables 1 and 3 (the Table 3 hybrid cell for parameter group 3 on
// 8 nodes equals Table 4's "w/o Above Two" row, pinning those tables to
// this profile).
func BaseOptions() Options {
	return Options{
		NICSelection:   comm.AutoSelection,
		Alpha:          1.05,
		ExtraDPTraffic: 1,
	}
}
