package trainer

import (
	"testing"

	"holmes/internal/model"
	"holmes/internal/topology"
)

// Tensor parallelism coverage: the paper's experiments fix t=1, but the
// framework supports t>1 (tensor groups stay inside nodes on NVLink).
func TestTensorParallelSimulates(t *testing.T) {
	topo := topology.IBEnv(4)
	pg := model.Group(1)
	for _, tp := range []int{1, 2, 4, 8} {
		spec := pg.Spec
		rep, err := Simulate(Config{
			Topo: topo, Spec: spec,
			TensorSize: tp, PipelineSize: 2,
			Framework: Holmes,
		})
		if err != nil {
			t.Fatalf("t=%d: %v", tp, err)
		}
		if rep.TFLOPS <= 0 || rep.Degrees.T != tp {
			t.Fatalf("t=%d: report %+v", tp, rep)
		}
		if rep.Degrees.D*rep.Degrees.P*rep.Degrees.T != 32 {
			t.Fatalf("t=%d: degrees do not tile: %+v", tp, rep.Degrees)
		}
	}
}

func TestTensorDegreeBeyondNodeRejected(t *testing.T) {
	topo := topology.IBEnv(4)
	pg := model.Group(1)
	_, err := Simulate(Config{
		Topo: topo, Spec: pg.Spec,
		TensorSize: 16, PipelineSize: 2, Framework: Holmes,
	})
	if err == nil {
		t.Fatal("t=16 exceeds the 8 GPUs per node and must be rejected")
	}
}

// A three-cluster federation (IB + RoCE + Ethernet) — the crosscluster
// example's configuration — must simulate and preserve the Holmes
// placement invariants.
func TestThreeClusterFederation(t *testing.T) {
	topo := topology.MustBuild(topology.Spec{Clusters: []topology.ClusterSpec{
		{NIC: topology.InfiniBand, Nodes: 4},
		{NIC: topology.RoCE, Nodes: 2},
		{NIC: topology.Ethernet, Nodes: 2},
	}})
	pg := model.Group(3)
	rep, err := Simulate(Config{
		Topo: topo, Spec: pg.Spec,
		TensorSize: 1, PipelineSize: 4,
		Framework: Holmes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TFLOPS <= 0 {
		t.Fatal("no performance")
	}
	// Megatron-LM on the same federation is slower: its unified channels
	// collapse everything to Ethernet.
	lm, err := Simulate(Config{
		Topo: topo, Spec: pg.Spec,
		TensorSize: 1, PipelineSize: 4,
		Framework: MegatronLM,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Throughput <= lm.Throughput {
		t.Fatalf("Holmes (%.2f) must beat Megatron-LM (%.2f) on a 3-cluster federation",
			rep.Throughput, lm.Throughput)
	}
}

// Micro-batch accounting: throughput scales near-linearly in global batch
// at fixed hardware (PG1 vs PG2 differ only in batch).
func TestBatchScalingBetweenGroups(t *testing.T) {
	topo := topology.IBEnv(4)
	g1, g2 := model.Group(1), model.Group(2)
	r1, err := Simulate(Config{Topo: topo, Spec: g1.Spec, TensorSize: 1, PipelineSize: 2, Framework: Holmes})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(Config{Topo: topo, Spec: g2.Spec, TensorSize: 1, PipelineSize: 2, Framework: Holmes})
	if err != nil {
		t.Fatal(err)
	}
	// Double the batch: per-GPU TFLOPS rises (smaller relative bubble and
	// communication share) — Table 3's PG1→PG2 pattern.
	if r2.TFLOPS <= r1.TFLOPS {
		t.Fatalf("PG2 (%.1f) should beat PG1 (%.1f) in TFLOPS", r2.TFLOPS, r1.TFLOPS)
	}
	// And throughput must not double (iteration time grows).
	if r2.Throughput >= 2*r1.Throughput {
		t.Fatalf("PG2 throughput %.1f ≥ 2× PG1 %.1f", r2.Throughput, r1.Throughput)
	}
}
