package trainer

import (
	"errors"
	"fmt"
	"math"

	"holmes/internal/parallel"
	"holmes/internal/topology"
)

// ErrAboveBound reports a simulation stopped by Config.AbortAbove: the
// iteration provably takes longer than the caller's incumbent, and its
// exact time was not worth computing. Branch-and-bound callers treat it
// as "candidate lost", never as a planning failure.
var ErrAboveBound = errors.New("trainer: iteration time exceeds the abort bound")

// LowerBound returns a cheap analytic lower bound on IterSeconds for the
// configuration: compute-only pipeline time plus best-case fluid-model
// communication. It builds no world and runs no events — every term is
// closed-form over the topology's link capacities — so it costs
// microseconds where Simulate costs milliseconds, which is what lets the
// joint (t, p) search order and prune candidates before simulating them
// (core.Planner.SearchPlan).
//
// Admissibility (bound ≤ simulated IterSeconds, property-tested in
// bound_test.go) rests on three facts about the simulator:
//
//  1. A pipeline stage executes its 2m operations serially (the
//     executor's busy flag), and each forward/backward of a stage holding
//     ℓ layers takes at least ℓ·(layer FLOPs)/effFLOPS plus 2ℓ tensor-
//     parallel ring all-reduces — so any stage's completion is at least
//     m times its per-micro work, and micro-batch 0 cannot reach the
//     last stage before every earlier stage's forward plus one
//     activation hop each.
//  2. No netsim flow ever runs faster than the fastest link in the
//     fabric, and every flow completes no earlier than its class
//     latency — so each communication term may assume the best link and
//     the smallest latency and remain a lower bound.
//  3. The iteration cannot end before some data-parallel group finishes
//     its final gradient reduce-scatter bucket, the optimizer step, and
//     the parameter all-gather — all of which start only after that
//     group's stage completes its last backward. A DP group needs d·t
//     GPUs of one stage inside a node to avoid the network entirely, so
//     when d·t exceeds the per-node GPU count its fluid ring has
//     inter-node edges carrying the full per-edge traffic, and the
//     collective is bounded by the fastest NIC rather than NVLink.
//
// The bound is the max of two chains: the micro-batch-0 fill chain
// through the last stage (which also serializes all m micro-batches and
// the vocabulary projection), and the bottleneck-stage chain (the stage
// with the most layers — at least ⌈L/p⌉ under any partition — must
// process all m micro-batches serially). Both end with the minimal DP
// tail. Partition is not yet known when the bound is evaluated, so each
// chain is minimized over all valid partitions.
func LowerBound(cfg Config) (float64, error) {
	if cfg.Topo == nil {
		return 0, fmt.Errorf("trainer: nil topology")
	}
	if err := cfg.Spec.Validate(); err != nil {
		return 0, err
	}
	opt := DefaultOptions(cfg.Framework)
	if cfg.Opt != nil {
		opt = *cfg.Opt
	}
	calib := DefaultCalibration()
	if cfg.Calib != nil {
		calib = *cfg.Calib
	}

	n := cfg.Topo.NumDevices()
	t, p := cfg.TensorSize, cfg.PipelineSize
	deg, err := parallel.TileDegrees(n, t, p)
	if err != nil {
		return 0, err
	}
	if cfg.Spec.Layers < p {
		return 0, fmt.Errorf("trainer: %d layers cannot fill %d pipeline stages", cfg.Spec.Layers, p)
	}
	m, err := cfg.Spec.MicroBatches(deg.D)
	if err != nil {
		return 0, err
	}

	effFLOPS := calib.PeakTFLOPS * 1e12 * calib.ComputeMFU
	layerWork := cfg.Spec.FLOPsForLayers(1, cfg.Spec.MicroBatch) / float64(t)
	vocabTime := (cfg.Spec.FLOPsPerIteration() - cfg.Spec.FLOPsForLayers(cfg.Spec.Layers, cfg.Spec.GlobalBatch)) /
		float64(cfg.Spec.GlobalBatch) * float64(cfg.Spec.MicroBatch) / float64(t) / effFLOPS

	// Fastest-case tensor-parallel ring all-reduce: the fastest intra-node
	// interconnect present anywhere in the topology. Zero at t = 1, like
	// the simulator's tpRingSeconds.
	tpRing := 0.0
	if t > 1 {
		bps := bestIntraBps(cfg.Topo, calib)
		bytes := cfg.Spec.ActivationMessageBytes()
		tpRing = 2*float64(t-1)/float64(t)*bytes/bps + 2*float64(t-1)*calib.Net.IntraLatency
	}
	// Forward / forward+backward time of one layer for one micro-batch
	// (tf = work/3 + 2 rings, tb = 2·work/3 + 2 rings).
	perLayerF := layerWork/3/effFLOPS + 2*tpRing
	perLayer := layerWork/effFLOPS + 4*tpRing

	bw := bestLinkBps(cfg.Topo, calib)
	hopMin := minLatency(calib) + cfg.Spec.ActivationMessageBytes()/float64(t)/bw

	// Bandwidth available to the DP collectives. A data-parallel group is
	// d ranks at one (stage, tensor-slot); hosting it inside a single node
	// needs d·t GPUs of one stage there, so when d·t exceeds the per-node
	// GPU count every DP group spans nodes — its ring has inter-node
	// edges, each carrying the collective's full per-edge traffic, and no
	// flow on such an edge can beat the fastest NIC in the fabric. Only
	// then may the tail drop the (much faster) intra-node rate.
	dpBw := bw
	if deg.D*t > cfg.Topo.GPUsPerNode {
		dpBw = bestInterBps(cfg.Topo, calib)
	}

	// Minimal DP tail after a stage holding ℓ layers finishes its last
	// backward: final reduce-scatter bucket + optimizer step + parameter
	// all-gather. Single-rank groups skip the collectives but still pay
	// the optimizer step (the simulator's collectives fire immediately at
	// d = 1 but afterRS always waits OptimizerSeconds).
	tail := func(layers int) float64 {
		out := calib.OptimizerSeconds
		if deg.D > 1 {
			params := float64(cfg.Spec.ParamsPerLayer()) * float64(layers) / float64(t) * opt.ExtraDPTraffic
			grad := params * calib.GradBytesPerParam
			if opt.OverlappedOptimizer {
				grad /= float64(m) // only the last bucket is forced past the last backward
			}
			param := params * calib.ParamBytesPerParam
			out += float64(deg.D-1) / float64(deg.D) * (grad + param) / dpBw
		}
		return out
	}

	// Chain 1: micro-batch 0 must traverse every earlier stage's forward
	// and one activation hop per boundary before the last stage starts;
	// the last stage then serializes all m micro-batches (forward and
	// backward, vocabulary projection included). Minimizing over
	// partitions puts one layer on the last stage (all L at p = 1).
	lastLayers := 1
	if p == 1 {
		lastLayers = cfg.Spec.Layers
	}
	fill := float64(cfg.Spec.Layers-lastLayers)*perLayerF +
		float64(p-1)*hopMin +
		float64(m)*(float64(lastLayers)*perLayer+vocabTime) +
		tail(lastLayers)

	// Chain 2: under any partition some stage holds ≥ ⌈L/p⌉ layers and
	// must run 2m serialized operations on them before its DP tail.
	maxLayers := (cfg.Spec.Layers + p - 1) / p
	bottleneck := float64(m)*float64(maxLayers)*perLayer + tail(maxLayers)

	return math.Max(fill, bottleneck), nil
}

// ThroughputUpperBound converts the iteration-time lower bound into a
// samples/s upper bound — the pruning test of the joint search: a
// candidate whose upper bound cannot beat the incumbent's simulated
// throughput need not be simulated at all.
func ThroughputUpperBound(cfg Config) (float64, error) {
	lb, err := LowerBound(cfg)
	if err != nil {
		return 0, err
	}
	if lb <= 0 {
		return math.Inf(1), nil
	}
	return float64(cfg.Spec.GlobalBatch) / lb, nil
}

// bestIntraBps returns the fastest intra-node interconnect rate present
// in the topology.
func bestIntraBps(topo *topology.Topology, calib Calibration) float64 {
	best := calib.Net.PCIeBytesPerSec
	for _, node := range topo.Nodes() {
		if node.Intra != topology.PCIe {
			return calib.Net.NVLinkBytesPerSec
		}
	}
	return best
}

// bestInterBps returns the highest capacity of any *inter-node* link —
// the ceiling for flows that must leave a node (cross-node DP rings).
func bestInterBps(topo *topology.Topology, calib Calibration) float64 {
	net := calib.Net
	best := 0.0
	for _, node := range topo.Nodes() {
		rdma := node.RDMAGbps() / 8 * 1e9
		switch node.RDMAType() {
		case topology.InfiniBand:
			rdma *= net.IBEff
		case topology.RoCE:
			rdma *= net.RoCEEff
		default:
			rdma *= net.EthEff
		}
		eth := node.EthNIC.Gbps / 8 * 1e9 * net.EthEff
		if rdma > best {
			best = rdma
		}
		if eth > best {
			best = eth
		}
	}
	if best <= 0 {
		best = net.NVLinkBytesPerSec // degenerate topology: stay admissible
	}
	return best
}

// bestLinkBps returns the highest capacity of any fabric link the
// topology produces — no flow can ever exceed it (max-min fair shares
// are capped by each link on the path).
func bestLinkBps(topo *topology.Topology, calib Calibration) float64 {
	net := calib.Net
	best := 0.0
	for _, node := range topo.Nodes() {
		rdma := node.RDMAGbps() / 8 * 1e9
		switch node.RDMAType() {
		case topology.InfiniBand:
			rdma *= net.IBEff
		case topology.RoCE:
			rdma *= net.RoCEEff
		default:
			rdma *= net.EthEff
		}
		eth := node.EthNIC.Gbps / 8 * 1e9 * net.EthEff
		intra := net.NVLinkBytesPerSec
		if node.Intra == topology.PCIe {
			intra = net.PCIeBytesPerSec
		}
		for _, bps := range []float64{rdma, eth, intra} {
			if bps > best {
				best = bps
			}
		}
	}
	if best <= 0 {
		best = net.NVLinkBytesPerSec
	}
	return best
}

// minLatency returns the smallest per-flow latency any class carries.
func minLatency(calib Calibration) float64 {
	lat := calib.Net.IntraLatency
	for _, l := range []float64{calib.Net.IBLatency, calib.Net.RoCELatency, calib.Net.EthLatency} {
		if l < lat {
			lat = l
		}
	}
	return lat
}
