package trainer

import (
	"holmes/internal/netsim"
	"holmes/internal/topology"
)

// Calibration holds the constants that tie the simulator to the paper's
// testbed. They are fitted once against Table 1 (GPT-3.6B, 4 nodes, pure
// InfiniBand / RoCE / Ethernet) and then held fixed for every other
// experiment; EXPERIMENTS.md records the residuals.
type Calibration struct {
	// PeakTFLOPS is the per-GPU fp16 peak (A100: 312).
	PeakTFLOPS float64
	// ComputeMFU is the fraction of peak the GPU kernels achieve on pure
	// compute, independent of networking. End-to-end MFU comes out lower
	// once communication stalls are simulated.
	ComputeMFU float64
	// SpeedTable gives the effective per-GPU TFLOPS a device achieves when
	// its data-parallel traffic rides each NIC technology — the S(·) terms
	// of the Self-Adapting Pipeline Partition (Eq. 4–5). Values are the
	// paper's own Table 1 measurements.
	SpeedTable map[topology.NICType]float64
	// OptimizerSeconds is the parameter-update time after gradients are
	// synchronized (HBM-bound, nearly constant).
	OptimizerSeconds float64
	// InterferenceFactor is the compute slowdown per second of overlapped
	// communication: NCCL kernels steal SMs and HBM bandwidth from the
	// backward pass they hide behind.
	InterferenceFactor float64
	// GradBytesPerParam is the per-parameter payload of the gradient
	// reduce-scatter (4: Megatron reduces fp32 main gradients).
	GradBytesPerParam float64
	// ParamBytesPerParam is the payload of the parameter all-gather that
	// follows a distributed-optimizer step (2: fp16 weights).
	ParamBytesPerParam float64
	// Net parameterizes the fabric.
	Net netsim.Params
}

// DefaultCalibration returns the constants fitted to Table 1.
func DefaultCalibration() Calibration {
	net := netsim.DefaultParams()
	// Fitted effective efficiencies (see EXPERIMENTS.md): InfiniBand runs
	// near line rate; RoCE's PFC/DCQCN leave it well short, which the
	// paper observes as 160 vs 197 TFLOPS at equal 200 Gb/s NIC ratings;
	// commodity Ethernet TCP stacks reach ~2/3 of line rate.
	net.IBEff = 0.92
	net.InterClusterGbpsPerNode = 12.5
	net.RoCEEff = 0.13
	net.EthEff = 0.72
	return Calibration{
		PeakTFLOPS: 312,
		ComputeMFU: 0.78,
		SpeedTable: map[topology.NICType]float64{
			topology.InfiniBand: 197,
			topology.RoCE:       160,
			topology.Ethernet:   122,
		},
		OptimizerSeconds:   0.05,
		InterferenceFactor: 0.15,
		GradBytesPerParam:  4,
		ParamBytesPerParam: 2,
		Net:                net,
	}
}

// StageSpeed returns the S(c_i) term for a pipeline stage whose devices
// all use the given NIC technology for data parallelism.
func (c Calibration) StageSpeed(nic topology.NICType) float64 {
	if s, ok := c.SpeedTable[nic]; ok {
		return s
	}
	return c.SpeedTable[topology.Ethernet]
}
