// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate: Table 1 (NIC comparison),
// Table 3 (parameter groups × environments × node counts), Table 4
// (component ablation), Figure 4 (grads-reduce-scatter cost), Figure 5
// (self-adapting vs uniform partition), Figure 6 (framework comparison),
// and Figure 7 (scalability).
//
// Each experiment returns rows carrying both the simulated metrics and
// the paper's published value where one exists, so EXPERIMENTS.md and the
// bench harness can report paper-vs-measured side by side.
//
// Cells of a grid are mutually independent simulations, so every
// experiment fans them out over the engine's bounded worker pool and
// assembles rows strictly in input order — the output is byte-identical
// to a sequential run.
//
// All execution settings (worker count, netsim oracle mode, communicator
// cache) live on an engine.Engine carried by a Suite: independent suites
// on independent engines can run concurrently without interfering. (The
// historical package-level entry points and their Concurrency /
// FullRecompute knobs are gone; construct a Suite.)
package experiments

import (
	"fmt"

	"holmes/internal/config"
	"holmes/internal/engine"
	"holmes/internal/fleet"
	"holmes/internal/model"
	"holmes/internal/scenario"
	"holmes/internal/topology"
	"holmes/internal/trainer"
)

// Row is one measurement row of a table or figure.
type Row struct {
	Experiment string  // "table1", "fig5", ...
	Label      string  // human-readable cell label
	TFLOPS     float64 // simulated per-GPU teraFLOP/s
	Throughput float64 // simulated samples/s
	// ReduceScatterMs is the gradient reduce-scatter wall time (Figure 4).
	ReduceScatterMs float64
	// PaperTFLOPS / PaperThroughput are the published values (0 = not
	// reported in the paper for this cell).
	PaperTFLOPS     float64
	PaperThroughput float64
	// Partition notes the stage division used.
	Partition string
}

// Suite binds the experiment grids to one engine: the engine's
// concurrency bounds the cell fan-out, its FullRecompute knob selects the
// netsim oracle, and its cache serves communicator worlds across cells.
type Suite struct {
	eng *engine.Engine
}

// NewSuite returns a suite on the given engine (nil = the shared default
// engine).
func NewSuite(eng *engine.Engine) Suite {
	if eng == nil {
		eng = engine.Default()
	}
	return Suite{eng: eng}
}

// Engine exposes the suite's engine (observability: cache stats).
func (s Suite) Engine() *engine.Engine { return s.eng }

// PipelineSize returns the pipeline-parallel degree used for a parameter
// group at a node count: Table 2 pins p=2 for the 3.6B groups and p=3 for
// the 7.5B groups; where 3 does not divide the device count (4 and 8
// nodes) the 7.5B groups run p=4, keeping stages aligned to clusters.
func PipelineSize(groupID, nodes int) int {
	pg := model.Group(groupID)
	p := pg.PipelineSize
	n := nodes * topology.DefaultGPUsPerNode
	if n%(p*pg.TensorSize) != 0 || nodes%p != 0 {
		p = 4
	}
	return p
}

// cell is one pending simulation of an experiment grid.
type cell struct {
	exp, label string
	topo       *topology.Topology
	spec       model.Spec
	t, p       int
	fw         trainer.Framework
	opt        *trainer.Options
	paperT     float64
	paperS     float64
	// sc scripts cluster events onto the cell's fabric (nil = pristine).
	sc *scenario.Scenario
}

// runCell simulates one cell on the suite's engine: the engine decides
// the netsim arm (incremental vs full-recompute oracle) and serves the
// communicator world from its cache.
func (s Suite) runCell(c cell) (Row, error) {
	rep, err := trainer.Simulate(trainer.Config{
		Topo: c.topo, Spec: c.spec, TensorSize: c.t, PipelineSize: c.p,
		Framework: c.fw, Opt: c.opt, Engine: s.eng, Scenario: c.sc,
	})
	if err != nil {
		return Row{}, fmt.Errorf("%s/%s: %w", c.exp, c.label, err)
	}
	return Row{
		Experiment:      c.exp,
		Label:           c.label,
		TFLOPS:          rep.TFLOPS,
		Throughput:      rep.Throughput,
		ReduceScatterMs: rep.ReduceScatterSeconds * 1000,
		PaperTFLOPS:     c.paperT,
		PaperThroughput: c.paperS,
		Partition:       rep.Partition.String(),
	}, nil
}

// runCells executes the cells on the engine's worker pool. Results land
// at their input index, so row order never depends on scheduling; the
// error reported is the first by input order, matching what a sequential
// run would have surfaced.
func (s Suite) runCells(cells []cell) ([]Row, error) {
	rows := make([]Row, len(cells))
	errs := make([]error, len(cells))
	s.eng.Go(len(cells), func(i int) {
		rows[i], errs[i] = s.runCell(cells[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// table1Paper holds the published Table 1 values (GPT-3.6B, 4 nodes).
var table1Paper = map[topology.EnvName][2]float64{
	topology.EnvInfiniBand: {197, 99.23},
	topology.EnvRoCE:       {160, 80.54},
	topology.EnvEthernet:   {122, 61.32},
	topology.EnvHybrid:     {149, 74.91},
}

// Table1 reproduces Table 1: parameter group 1 on 4 nodes across the
// three homogeneous NIC environments (the paper's Table 1 proper) plus
// the Hybrid row that Table 3 adds for the same configuration.
func (s Suite) Table1() ([]Row, error) {
	pg := model.Group(1)
	base := trainer.BaseOptions()
	var cells []cell
	for _, env := range topology.AllEnvs {
		topo, err := topology.Env(env, 4)
		if err != nil {
			return nil, err
		}
		paper := table1Paper[env]
		cells = append(cells, cell{
			exp: "table1", label: string(env), topo: topo, spec: pg.Spec,
			t: pg.TensorSize, p: PipelineSize(1, 4), fw: trainer.Holmes, opt: &base,
			paperT: paper[0], paperS: paper[1],
		})
	}
	return s.runCells(cells)
}

// table3Paper holds the published Table 3 grid indexed by
// [group-1][env][nodes-index] with nodes 4, 6, 8.
var table3Paper = map[int]map[topology.EnvName][3][2]float64{
	1: {
		topology.EnvInfiniBand: {{197, 99.23}, {188, 142.09}, {148, 148.88}},
		topology.EnvRoCE:       {{160, 80.54}, {151, 114.15}, {145, 145.64}},
		topology.EnvEthernet:   {{122, 61.32}, {99, 74.98}, {83, 83.38}},
		topology.EnvHybrid:     {{149, 74.91}, {129, 97.84}, {112, 112.46}},
	},
	2: {
		topology.EnvInfiniBand: {{206, 103.66}, {200, 151.25}, {156, 156.66}},
		topology.EnvRoCE:       {{168, 84.78}, {162, 122.53}, {159, 160.47}},
		topology.EnvEthernet:   {{145, 72.95}, {128, 96.75}, {114, 114.52}},
		topology.EnvHybrid:     {{162, 81.38}, {152, 114.63}, {132, 132.73}},
	},
	3: {
		topology.EnvInfiniBand: {{229, 55.95}, {220, 80.64}, {189, 92.35}},
		topology.EnvRoCE:       {{196, 48.04}, {185, 67.84}, {185, 90.40}},
		topology.EnvEthernet:   {{168, 41.04}, {143, 52.91}, {132, 64.85}},
		topology.EnvHybrid:     {{191, 46.66}, {170, 62.43}, {168, 82.02}},
	},
	4: {
		topology.EnvInfiniBand: {{233, 57.03}, {228, 83.61}, {196, 95.79}},
		topology.EnvRoCE:       {{201, 49.10}, {193, 70.88}, {194, 94.85}},
		topology.EnvEthernet:   {{180, 44.10}, {168, 61.59}, {158, 77.31}},
		topology.EnvHybrid:     {{200, 48.89}, {187, 68.52}, {177, 86.58}},
	},
}

// Table3Nodes are the node counts of Table 3's columns.
var Table3Nodes = []int{4, 6, 8}

// table3Cells builds the Table 3 grid in row order: four parameter
// groups × four NIC environments × {4, 6, 8} nodes. Table3 runs it as
// is; Scenarios crosses the same cells with fault arms, so the two
// grids can never drift apart.
func table3Cells() ([]cell, error) {
	base := trainer.BaseOptions()
	var cells []cell
	for id := 1; id <= 4; id++ {
		pg := model.Group(id)
		for _, env := range topology.AllEnvs {
			for ni, nodes := range Table3Nodes {
				topo, err := topology.Env(env, nodes)
				if err != nil {
					return nil, err
				}
				paper := table3Paper[id][env][ni]
				cells = append(cells, cell{
					exp:   "table3",
					label: fmt.Sprintf("PG%d/%s/%dn", id, env, nodes),
					topo:  topo, spec: pg.Spec,
					t: pg.TensorSize, p: PipelineSize(id, nodes),
					fw: trainer.Holmes, opt: &base,
					paperT: paper[0], paperS: paper[1],
				})
			}
		}
	}
	return cells, nil
}

// Table3 reproduces the full Table 3 grid.
func (s Suite) Table3() ([]Row, error) {
	cells, err := table3Cells()
	if err != nil {
		return nil, err
	}
	return s.runCells(cells)
}

// Figure4 reproduces the grads-reduce-scatter comparison: the wall time of
// gradient reduce-scatter per parameter group for 4 and 8 nodes in every
// NIC environment (log-scale milliseconds in the paper).
func (s Suite) Figure4() ([]Row, error) {
	base := trainer.BaseOptions()
	var cells []cell
	for _, nodes := range []int{4, 8} {
		for id := 1; id <= 4; id++ {
			pg := model.Group(id)
			for _, env := range topology.AllEnvs {
				topo, err := topology.Env(env, nodes)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell{
					exp:   "fig4",
					label: fmt.Sprintf("PG%d/%s/%dn", id, env, nodes),
					topo:  topo, spec: pg.Spec,
					t: pg.TensorSize, p: PipelineSize(id, nodes),
					fw: trainer.Holmes, opt: &base,
				})
			}
		}
	}
	return s.runCells(cells)
}

// Figure5 reproduces the partition-strategy comparison: Holmes
// (self-adapting, α=1.05) versus uniform partition for every parameter
// group on the 8-node hybrid environment, with the overlapped optimizer
// active in both arms.
func (s Suite) Figure5() ([]Row, error) {
	topo := topology.HybridEnv(8)
	var cells []cell
	for id := 1; id <= 4; id++ {
		pg := model.Group(id)
		p := PipelineSize(id, 8)
		for _, sa := range []bool{true, false} {
			opt := trainer.DefaultOptions(trainer.Holmes)
			opt.SelfAdaptingPartition = sa
			name := "Holmes"
			if !sa {
				name = "Uniform"
			}
			cells = append(cells, cell{
				exp:   "fig5",
				label: fmt.Sprintf("PG%d/%s", id, name),
				topo:  topo, spec: pg.Spec,
				t: pg.TensorSize, p: p, fw: trainer.Holmes, opt: &opt,
			})
		}
	}
	return s.runCells(cells)
}

// figure6Paper holds Figure 6's published throughputs (PG3, 8 nodes:
// 4 IB + 4 RoCE).
var figure6Paper = map[trainer.Framework]float64{
	trainer.MegatronDeepSpeed: 54.037,
	trainer.MegatronLM:        63.438,
	trainer.MegatronLLaMA:     77.933,
	trainer.Holmes:            89.481,
}

// Figure6 reproduces the framework comparison: parameter group 3 on the
// 8-node hybrid environment across the four frameworks.
func (s Suite) Figure6() ([]Row, error) {
	pg := model.Group(3)
	topo := topology.HybridEnv(8)
	p := PipelineSize(3, 8)
	var cells []cell
	for _, fw := range trainer.AllFrameworks {
		cells = append(cells, cell{
			exp: "fig6", label: string(fw), topo: topo, spec: pg.Spec,
			t: pg.TensorSize, p: p, fw: fw,
			paperS: figure6Paper[fw],
		})
	}
	return s.runCells(cells)
}

// figure7Paper holds Figure 7's published throughputs for Holmes on the
// 39.1B model at 4, 8, 12 nodes.
var figure7Paper = map[int]float64{4: 9.766, 8: 18.52, 12: 25.771}

// Figure7Nodes are the scalability points.
var Figure7Nodes = []int{4, 8, 12}

// Figure7 reproduces the scalability study: the 39.1-billion-parameter
// GPT model on 4, 8, and 12 hybrid nodes, Holmes versus Megatron-LLaMA
// and Megatron-LM.
func (s Suite) Figure7() ([]Row, error) {
	spec := model.GPT39B(1536)
	var cells []cell
	for _, nodes := range Figure7Nodes {
		topo := topology.HybridEnv(nodes)
		for _, fw := range []trainer.Framework{trainer.Holmes, trainer.MegatronLLaMA, trainer.MegatronLM} {
			c := cell{
				exp:   "fig7",
				label: fmt.Sprintf("%s/%dn", fw, nodes),
				topo:  topo, spec: spec, t: 1, p: 4, fw: fw,
			}
			if fw == trainer.Holmes {
				c.paperS = figure7Paper[nodes]
			}
			cells = append(cells, c)
		}
	}
	return s.runCells(cells)
}

// table4Paper holds the published ablation (PG3, 8-node hybrid).
var table4Paper = map[string][2]float64{
	"Megatron-LM":       {132, 64.86},
	"Holmes":            {183, 89.48},
	"w/o Self-Adapting": {179, 87.55},
	"w/o Overlapped":    {170, 83.15},
	"w/o Above Two":     {168, 82.02},
}

// Table4 reproduces the component ablation on parameter group 3, 8-node
// hybrid.
func (s Suite) Table4() ([]Row, error) {
	pg := model.Group(3)
	topo := topology.HybridEnv(8)
	p := PipelineSize(3, 8)

	noSA := trainer.DefaultOptions(trainer.Holmes)
	noSA.SelfAdaptingPartition = false
	noOv := trainer.DefaultOptions(trainer.Holmes)
	noOv.OverlappedOptimizer = false
	base := trainer.BaseOptions()

	variants := []struct {
		label string
		fw    trainer.Framework
		opt   *trainer.Options
	}{
		{"Megatron-LM", trainer.MegatronLM, nil},
		{"Holmes", trainer.Holmes, nil},
		{"w/o Self-Adapting", trainer.Holmes, &noSA},
		{"w/o Overlapped", trainer.Holmes, &noOv},
		{"w/o Above Two", trainer.Holmes, &base},
	}
	var cells []cell
	for _, v := range variants {
		paper := table4Paper[v.label]
		cells = append(cells, cell{
			exp: "table4", label: v.label, topo: topo, spec: pg.Spec,
			t: pg.TensorSize, p: p, fw: v.fw, opt: v.opt,
			paperT: paper[0], paperS: paper[1],
		})
	}
	return s.runCells(cells)
}

// ScenarioVariants are the fault arms of the scenario grid, in row
// order. The pristine arm is an empty scenario — bit-identical to the
// plain Table 3 cell by construction; the degraded arm halves node 0's
// RDMA and Ethernet capacity from the start of the iteration; the failed
// arm drops node 0 off the network fabric entirely.
var ScenarioVariants = []*scenario.Scenario{
	{Name: "pristine"},
	{Name: "degraded", Events: []scenario.Event{
		{Kind: scenario.DegradeNIC, At: 0, Node: 0, Class: scenario.ClassRDMA, Factor: 0.5},
		{Kind: scenario.DegradeNIC, At: 0, Node: 0, Class: scenario.ClassEther, Factor: 0.5},
	}},
	{Name: "failed", Events: []scenario.Event{
		{Kind: scenario.FailNode, At: 0, Node: 0},
	}},
	// The impaired arm exercises the packet-impairment vocabulary: node 0
	// straggles at 70%, loses 10% of RDMA traffic (goodput derate), and
	// sees 1 ms extra RDMA latency with a seeded heavy-tailed jitter on
	// top — a lossy, late, slow node rather than a dead one.
	{Name: "impaired", Seed: 17, Events: []scenario.Event{
		{Kind: scenario.Straggler, At: 0, Node: 0, Factor: 0.7},
		{Kind: scenario.Loss, At: 0, Node: 0, Class: scenario.ClassRDMA, Pct: 10},
		{Kind: scenario.Delay, At: 0, Node: 0, Class: scenario.ClassRDMA, DelayMs: 1, Direction: "both"},
		{Kind: scenario.Jitter, At: 0, Node: 0, Class: scenario.ClassRDMA, JitterMs: 0.2, Dist: "pareto"},
	}},
}

// Scenarios runs the scenario grid: every Table 3 cell under each of the
// ScenarioVariants fault arms — the robustness counterpart of the paper's
// headline table. Rows keep Table 3's cell order, fault arms innermost.
func (s Suite) Scenarios() ([]Row, error) {
	base, err := table3Cells()
	if err != nil {
		return nil, err
	}
	cells := make([]cell, 0, len(base)*len(ScenarioVariants))
	for _, c := range base {
		for _, sc := range ScenarioVariants {
			c := c
			c.exp = "scenarios"
			c.label += "/" + sc.Name
			c.paperT, c.paperS = 0, 0 // the paper has no under-fault numbers
			c.sc = sc
			cells = append(cells, c)
		}
	}
	return s.runCells(cells)
}

// All runs every experiment, keyed by experiment id in paper order.
func (s Suite) All() (map[string][]Row, error) {
	out := make(map[string][]Row)
	for _, id := range Names {
		rows, err := s.Run(id)
		if err != nil {
			return nil, err
		}
		out[id] = rows
	}
	return out, nil
}

// FleetJobs are the contending jobs of the fleet grid: the four Table-2
// parameter groups arriving together on an 8-node hybrid fleet, demands
// sized so the fleet is oversubscribed and the scheduler must queue.
var FleetJobs = []fleet.Job{
	{ID: "PG1", GPUs: 16, Iterations: 1, Model: config.ModelConfig{Group: 1}},
	{ID: "PG2", GPUs: 16, Iterations: 1, Model: config.ModelConfig{Group: 2}},
	{ID: "PG3", GPUs: 32, Iterations: 1, Model: config.ModelConfig{Group: 3}},
	{ID: "PG4", GPUs: 32, Iterations: 1, Model: config.ModelConfig{Group: 4}},
}

// FleetVariants are the fleet grid's arms: a pristine replay and a
// degraded one where a RoCE node loses half its RDMA capacity at the
// start and an IB node fails mid-run (evicting and requeueing whatever
// was placed on it).
var FleetVariants = []*scenario.Scenario{
	{Name: "pristine"},
	{Name: "degraded", Events: []scenario.Event{
		{Kind: scenario.DegradeNIC, At: 0, Node: 4, Class: scenario.ClassRDMA, Factor: 0.5},
		{Kind: scenario.FailNode, At: 5, Node: 0},
	}},
}

// Fleet runs the multi-job fleet grid: the Table-3 parameter groups as
// contending jobs on one shared 8-node hybrid fleet, replayed pristine
// and degraded. Rows carry each job's planned slice performance; the
// schedule itself (placements, makespan) is pinned by the fleet golden
// test, so the grid reports the paper-comparable metrics only.
func (s Suite) Fleet() ([]Row, error) {
	// The variant replays are independent; fan them over the engine pool
	// and collect rows in variant order, so the table is identical to a
	// sequential run (same recipe as the experiment-grid cells).
	scheds := make([]*fleet.Schedule, len(FleetVariants))
	errs := make([]error, len(FleetVariants))
	s.eng.Go(len(FleetVariants), func(i int) {
		tr := &fleet.Trace{
			Name:     "fleet",
			Fleet:    Spec8Hybrid(),
			Scenario: FleetVariants[i],
			Jobs:     FleetJobs,
		}
		scheds[i], errs[i] = fleet.Replay(s.eng, tr)
	})
	var rows []Row
	for i, sc := range FleetVariants {
		if errs[i] != nil {
			return nil, fmt.Errorf("fleet/%s: %w", sc.Name, errs[i])
		}
		for _, p := range scheds[i].Jobs {
			rows = append(rows, Row{
				Experiment: "fleet",
				Label:      fmt.Sprintf("%s/%s", p.JobID, sc.Name),
				TFLOPS:     p.TFLOPS,
				Throughput: p.Throughput,
				Partition:  p.Partition,
			})
		}
	}
	return rows, nil
}

// Spec8Hybrid is the fleet grid's topology: the paper's 8-node hybrid
// environment expressed as a fleet spec.
func Spec8Hybrid() fleet.Spec {
	return fleet.Spec{Env: string(topology.EnvHybrid), Nodes: 8}
}

// Names lists experiment ids in paper order; "scenarios" and "fleet"
// are the grid's fault-robustness and multi-job extensions beyond the
// paper.
var Names = []string{"table1", "table3", "fig4", "fig5", "fig6", "fig7", "table4", "scenarios", "fleet"}

// Run dispatches one experiment by id.
func (s Suite) Run(id string) ([]Row, error) {
	switch id {
	case "table1":
		return s.Table1()
	case "table3":
		return s.Table3()
	case "fig4":
		return s.Figure4()
	case "fig5":
		return s.Figure5()
	case "fig6":
		return s.Figure6()
	case "fig7":
		return s.Figure7()
	case "table4":
		return s.Table4()
	case "scenarios":
		return s.Scenarios()
	case "fleet":
		return s.Fleet()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (want one of %v)", id, Names)
	}
}
