package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The fleet grid: four contending parameter groups × pristine/degraded
// replays of one shared 8-node hybrid fleet.
func TestFleetGridShape(t *testing.T) {
	rows, err := NewSuite(nil).Fleet()
	if err != nil {
		t.Fatal(err)
	}
	want := len(FleetJobs) * len(FleetVariants)
	if len(rows) != want {
		t.Fatalf("fleet grid has %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Experiment != "fleet" {
			t.Fatalf("row labelled %q", r.Experiment)
		}
		if r.Throughput <= 0 || r.TFLOPS <= 0 {
			t.Fatalf("job %s reported no performance: %+v", r.Label, r)
		}
	}
	// Every job appears once per variant.
	seen := map[string]int{}
	for _, r := range rows {
		seen[r.Label]++
	}
	for _, j := range FleetJobs {
		for _, sc := range FleetVariants {
			label := j.ID + "/" + sc.Name
			if seen[label] != 1 {
				t.Fatalf("label %s appears %d times", label, seen[label])
			}
		}
	}
	// The degraded arm runs on a smaller, slower fleet: at least one job
	// must come out of it with strictly lower planned throughput.
	slower := false
	for _, j := range FleetJobs {
		var pristine, degraded Row
		for _, r := range rows {
			if strings.HasPrefix(r.Label, j.ID+"/") {
				if strings.HasSuffix(r.Label, "/pristine") {
					pristine = r
				} else {
					degraded = r
				}
			}
		}
		if degraded.Throughput < pristine.Throughput {
			slower = true
		}
	}
	if !slower {
		t.Fatal("the degraded arm changed no job's planned throughput; the fault arm is dead")
	}
}

// The grid is deterministic across suites (and therefore across the API
// and holmes-bench runs).
func TestFleetGridDeterministic(t *testing.T) {
	a, err := suite(1, false).Run("fleet")
	if err != nil {
		t.Fatal(err)
	}
	b, err := suite(8, false).Run("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fleet grid rows differ across engine concurrency")
	}
}
