package experiments

import (
	"reflect"
	"testing"
)

// setRunMode flips the package knobs for one test and restores them.
func setRunMode(t *testing.T, workers int, oracle bool) {
	t.Helper()
	prevC, prevF := Concurrency, FullRecompute
	Concurrency, FullRecompute = workers, oracle
	t.Cleanup(func() { Concurrency, FullRecompute = prevC, prevF })
}

// The concurrent runner must produce rows in the same order with the same
// bits as a sequential run: cells are independent simulations, and the
// pool only changes which goroutine executes them.
func TestRowsDeterministicUnderConcurrency(t *testing.T) {
	for _, id := range []string{"table1", "fig5", "fig6"} {
		setRunMode(t, 1, false)
		seq, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		setRunMode(t, 8, false)
		for trial := 0; trial < 3; trial++ {
			conc, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, conc) {
				t.Fatalf("%s: concurrent rows differ from sequential (trial %d):\nseq  %+v\nconc %+v",
					id, trial, seq, conc)
			}
		}
	}
}

// Every experiment row produced by the fast path (incremental rebalancer,
// concurrent runner) must be bit-identical to the sequential
// full-recompute oracle. Table 3 is the acceptance grid; table1 covers
// the remaining environments cheaply. Exact equality is achievable
// because rates drain lazily (see netsim.Fabric.reschedule): both modes
// compute the same unique max-min schedule through the same arithmetic.
func TestOracleEquivalence(t *testing.T) {
	grids := []string{"table1", "table3"}
	if testing.Short() {
		grids = grids[:1]
	}
	for _, id := range grids {
		setRunMode(t, 8, false)
		fast, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		setRunMode(t, 1, true)
		oracle, err := Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(oracle) {
			t.Fatalf("%s: row count %d vs oracle %d", id, len(fast), len(oracle))
		}
		for i := range fast {
			if fast[i] != oracle[i] {
				t.Fatalf("%s row %d (%s): fast {%.17g TFLOPS, %.17g samples/s, %.17g ms} vs oracle {%.17g, %.17g, %.17g}",
					id, i, fast[i].Label, fast[i].TFLOPS, fast[i].Throughput, fast[i].ReduceScatterMs,
					oracle[i].TFLOPS, oracle[i].Throughput, oracle[i].ReduceScatterMs)
			}
		}
	}
}

// Exercise the worker pool with more workers than cells and again with
// fewer; combined with -race in CI this is the pool's race test.
func TestWorkerPoolBounds(t *testing.T) {
	for _, workers := range []int{1, 2, 64} {
		setRunMode(t, workers, false)
		rows, err := Table4()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("workers=%d: got %d rows, want 5", workers, len(rows))
		}
	}
}
