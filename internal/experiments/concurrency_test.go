package experiments

import (
	"reflect"
	"sync"
	"testing"

	"holmes/internal/engine"
)

func suite(workers int, oracle bool) Suite {
	return NewSuite(engine.New(engine.Config{Concurrency: workers, FullRecompute: oracle}))
}

// The concurrent runner must produce rows in the same order with the same
// bits as a sequential run: cells are independent simulations, and the
// pool only changes which goroutine executes them.
func TestRowsDeterministicUnderConcurrency(t *testing.T) {
	for _, id := range []string{"table1", "fig5", "fig6"} {
		seq, err := suite(1, false).Run(id)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			conc, err := suite(8, false).Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, conc) {
				t.Fatalf("%s: concurrent rows differ from sequential (trial %d):\nseq  %+v\nconc %+v",
					id, trial, seq, conc)
			}
		}
	}
}

// Every experiment row produced by the fast path (incremental rebalancer,
// concurrent runner) must be bit-identical to the sequential
// full-recompute oracle. Table 3 is the acceptance grid; table1 covers
// the remaining environments cheaply. Exact equality is achievable
// because rates drain lazily (see netsim.Fabric.reschedule): both modes
// compute the same unique max-min schedule through the same arithmetic.
func TestOracleEquivalence(t *testing.T) {
	grids := []string{"table1", "table3"}
	if testing.Short() {
		grids = grids[:1]
	}
	for _, id := range grids {
		fast, err := suite(8, false).Run(id)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := suite(1, true).Run(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) != len(oracle) {
			t.Fatalf("%s: row count %d vs oracle %d", id, len(fast), len(oracle))
		}
		for i := range fast {
			if fast[i] != oracle[i] {
				t.Fatalf("%s row %d (%s): fast {%.17g TFLOPS, %.17g samples/s, %.17g ms} vs oracle {%.17g, %.17g, %.17g}",
					id, i, fast[i].Label, fast[i].TFLOPS, fast[i].Throughput, fast[i].ReduceScatterMs,
					oracle[i].TFLOPS, oracle[i].Throughput, oracle[i].ReduceScatterMs)
			}
		}
	}
}

// Two engines with different FullRecompute / concurrency settings must be
// able to run the same grid CONCURRENTLY and each produce rows
// bit-identical to its own sequential reference — the proof that no
// package-level mutable state couples independent tenants (before the
// engine refactor, one caller flipping experiments.FullRecompute mid-run
// corrupted the other's arm). Run under -race in CI.
func TestIndependentEnginesRunConcurrently(t *testing.T) {
	id := "table3"
	if testing.Short() {
		id = "table1"
	}
	// Sequential references for both arms. Oracle equivalence (above)
	// makes them bit-identical to each other too, but each arm is checked
	// against its own reference to keep this test's claim self-contained.
	refFast, err := suite(1, false).Run(id)
	if err != nil {
		t.Fatal(err)
	}
	refOracle, err := suite(1, true).Run(id)
	if err != nil {
		t.Fatal(err)
	}

	arms := []struct {
		name string
		s    Suite
		ref  []Row
	}{
		{"fast/8workers", suite(8, false), refFast},
		{"oracle/2workers", suite(2, true), refOracle},
	}
	var wg sync.WaitGroup
	results := make([][]Row, len(arms))
	errs := make([]error, len(arms))
	for i, arm := range arms {
		i, arm := i, arm
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = arm.s.Run(id)
		}()
	}
	wg.Wait()
	for i, arm := range arms {
		if errs[i] != nil {
			t.Fatalf("%s: %v", arm.name, errs[i])
		}
		if !reflect.DeepEqual(results[i], arm.ref) {
			t.Fatalf("%s: concurrent rows differ from its sequential reference", arm.name)
		}
	}
}

// Exercise the worker pool with more workers than cells and again with
// fewer; combined with -race in CI this is the pool's race test.
func TestWorkerPoolBounds(t *testing.T) {
	for _, workers := range []int{1, 2, 64} {
		rows, err := suite(workers, false).Table4()
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5 {
			t.Fatalf("workers=%d: got %d rows, want 5", workers, len(rows))
		}
	}
}
