package experiments

import (
	"math"
	"testing"
)

func TestTable1ShapeMatchesPaper(t *testing.T) {
	rows, err := NewSuite(nil).Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table1 has %d rows", len(rows))
	}
	get := func(label string) Row {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("missing row %q", label)
		return Row{}
	}
	ib, roce := get("InfiniBand"), get("RoCE")
	eth, hyb := get("Ethernet"), get("Hybrid")
	// Ordering: IB > RoCE > Hybrid > Ethernet (the paper's headline shape).
	if !(ib.TFLOPS > roce.TFLOPS && roce.TFLOPS > hyb.TFLOPS && hyb.TFLOPS > eth.TFLOPS) {
		t.Fatalf("ordering violated: IB=%.0f RoCE=%.0f Hybrid=%.0f Eth=%.0f",
			ib.TFLOPS, roce.TFLOPS, hyb.TFLOPS, eth.TFLOPS)
	}
	// Calibration: every cell within 15%% of the paper.
	for _, r := range rows {
		if rel := math.Abs(r.TFLOPS-r.PaperTFLOPS) / r.PaperTFLOPS; rel > 0.15 {
			t.Errorf("%s: %.1f TFLOPS vs paper %.1f (%.0f%% off)", r.Label, r.TFLOPS, r.PaperTFLOPS, rel*100)
		}
	}
	// Hybrid recovers most of the RDMA advantage over Ethernet.
	if gain := (hyb.TFLOPS - eth.TFLOPS) / (roce.TFLOPS - eth.TFLOPS); gain < 0.2 {
		t.Errorf("hybrid recovers only %.0f%% of the RoCE-over-Ethernet gain", gain*100)
	}
}

func TestFigure6OrderingMatchesPaper(t *testing.T) {
	rows, err := NewSuite(nil).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fig6 has %d rows", len(rows))
	}
	// Paper order: DeepSpeed < LM < LLaMA < Holmes.
	for i := 1; i < len(rows); i++ {
		if rows[i].Throughput <= rows[i-1].Throughput {
			t.Fatalf("framework ordering violated at %s (%.1f) vs %s (%.1f)",
				rows[i].Label, rows[i].Throughput, rows[i-1].Label, rows[i-1].Throughput)
		}
	}
}

func TestTable4Monotonicity(t *testing.T) {
	rows, err := NewSuite(nil).Table4()
	if err != nil {
		t.Fatal(err)
	}
	get := func(label string) Row {
		for _, r := range rows {
			if r.Label == label {
				return r
			}
		}
		t.Fatalf("missing %q", label)
		return Row{}
	}
	holmes := get("Holmes")
	noSA := get("w/o Self-Adapting")
	noOv := get("w/o Overlapped")
	base := get("w/o Above Two")
	lm := get("Megatron-LM")
	if holmes.TFLOPS < noSA.TFLOPS-0.5 {
		t.Errorf("removing self-adapting should not speed Holmes up: %.1f vs %.1f", holmes.TFLOPS, noSA.TFLOPS)
	}
	if holmes.TFLOPS <= noOv.TFLOPS {
		t.Errorf("removing overlap should slow Holmes: %.1f vs %.1f", holmes.TFLOPS, noOv.TFLOPS)
	}
	if base.TFLOPS <= lm.TFLOPS {
		t.Errorf("Holmes base must beat Megatron-LM: %.1f vs %.1f", base.TFLOPS, lm.TFLOPS)
	}
	if holmes.TFLOPS <= lm.TFLOPS*1.15 {
		t.Errorf("Holmes should beat Megatron-LM by a wide margin: %.1f vs %.1f", holmes.TFLOPS, lm.TFLOPS)
	}
}
