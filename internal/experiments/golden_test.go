package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Golden-file regression: the committed testdata/*.golden.json rows pin
// every Table 1 and Table 3 cell bit-for-bit. The simulator is fully
// deterministic (input-ordered fan-out, incremental rebalancer held
// bit-identical to its oracle), so any drift — a calibration nudge, a
// cost-model change, an accidental reordering — fails here with a
// row-level diff before it can silently rewrite the paper comparison.
//
// Refresh intentionally with:
//
//	go test ./internal/experiments -run Golden -update
//
// (Goldens are produced on amd64; Go permits FMA fusion on some other
// architectures, which could shift last-ulp float results there.)

var update = flag.Bool("update", false, "rewrite golden files with current results")

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".golden.json")
}

// checkGolden compares rows against the committed golden, reporting
// every mismatch row by row, field by field.
func checkGolden(t *testing.T, name string, rows []Row) {
	t.Helper()
	path := goldenPath(name)
	if *update {
		data, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows)", path, len(rows))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	var want []Row
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden %s: %v", path, err)
	}
	if len(rows) != len(want) {
		t.Fatalf("%s: %d rows, golden has %d", name, len(rows), len(want))
	}
	for i := range want {
		if diff := diffRows(want[i], rows[i]); diff != "" {
			t.Errorf("%s row %d (%s) drifted from golden:\n%s", name, i, want[i].Label, diff)
		}
	}
}

// diffRows renders a readable field-level diff between a golden row and
// a freshly computed one ("" = identical).
func diffRows(want, got Row) string {
	var b strings.Builder
	cmpS := func(field, w, g string) {
		if w != g {
			fmt.Fprintf(&b, "  %-16s golden %q, got %q\n", field, w, g)
		}
	}
	cmpF := func(field string, w, g float64) {
		if w != g {
			fmt.Fprintf(&b, "  %-16s golden %.17g, got %.17g\n", field, w, g)
		}
	}
	cmpS("Experiment", want.Experiment, got.Experiment)
	cmpS("Label", want.Label, got.Label)
	cmpF("TFLOPS", want.TFLOPS, got.TFLOPS)
	cmpF("Throughput", want.Throughput, got.Throughput)
	cmpF("ReduceScatterMs", want.ReduceScatterMs, got.ReduceScatterMs)
	cmpF("PaperTFLOPS", want.PaperTFLOPS, got.PaperTFLOPS)
	cmpF("PaperThroughput", want.PaperThroughput, got.PaperThroughput)
	cmpS("Partition", want.Partition, got.Partition)
	return b.String()
}

func TestTable1MatchesGolden(t *testing.T) {
	rows, err := NewSuite(nil).Table1()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table1", rows)
}

func TestTable3MatchesGolden(t *testing.T) {
	rows, err := NewSuite(nil).Table3()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3", rows)
}
