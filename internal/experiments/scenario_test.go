package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// The scenario grid's acceptance contract: the pristine arm (an empty
// scenario) is bit-identical to the plain Table 3 rows committed in the
// golden file, while the fault arms strictly cost throughput.
func TestScenarioGridAgainstTable3Golden(t *testing.T) {
	rows, err := NewSuite(nil).Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if want := 48 * len(ScenarioVariants); len(rows) != want {
		t.Fatalf("scenario grid has %d rows, want %d", len(rows), want)
	}
	arms := make(map[string][]Row) // variant name -> rows in Table 3 cell order
	for _, r := range rows {
		i := strings.LastIndex(r.Label, "/")
		arms[r.Label[i+1:]] = append(arms[r.Label[i+1:]], r)
	}

	data, err := os.ReadFile(goldenPath("table3"))
	if err != nil {
		t.Fatalf("missing table3 golden: %v", err)
	}
	var golden []Row
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatal(err)
	}

	pristine := arms["pristine"]
	if len(pristine) != len(golden) {
		t.Fatalf("%d pristine rows vs %d golden rows", len(pristine), len(golden))
	}
	for i, g := range golden {
		p := pristine[i]
		// Bit-identical metrics: an empty scenario schedules nothing, so
		// the simulation must be indistinguishable from no scenario.
		if p.TFLOPS != g.TFLOPS || p.Throughput != g.Throughput ||
			p.ReduceScatterMs != g.ReduceScatterMs || p.Partition != g.Partition {
			t.Errorf("pristine arm drifted from golden at %s:\n%s", g.Label, diffRows(g, p))
		}
	}

	for i, g := range golden {
		deg, failed := arms["degraded"][i], arms["failed"][i]
		if deg.Throughput > g.Throughput {
			t.Errorf("%s: degraded arm faster than pristine (%.4f > %.4f)", g.Label, deg.Throughput, g.Throughput)
		}
		// A failed node strictly increases step time (throughput is
		// GlobalBatch/IterSeconds, so it strictly drops), and hurts more
		// than mere degradation.
		if !(failed.Throughput < g.Throughput) {
			t.Errorf("%s: failed arm not strictly slower (%.6f vs %.6f)", g.Label, failed.Throughput, g.Throughput)
		}
		if !(failed.Throughput <= deg.Throughput) {
			t.Errorf("%s: failure milder than degradation (%.6f > %.6f)", g.Label, failed.Throughput, deg.Throughput)
		}
	}

	// The impairment arm (loss + delay + jitter + straggler on node 0)
	// must strictly cost throughput across the grid. Per cell a small win
	// is tolerated: the self-adapting partitioner re-balances stage loads
	// around the straggler, and the perturbed heuristic can land on a
	// slightly luckier split than the pristine one (observed ~1% on a
	// Hybrid cell) — but impairment can never be broadly free.
	var sumImp, sumPristine float64
	for i, g := range golden {
		imp := arms["impaired"][i]
		if imp.Throughput > 1.02*g.Throughput {
			t.Errorf("%s: impaired arm faster than pristine (%.6f > %.6f)", g.Label, imp.Throughput, g.Throughput)
		}
		sumImp += imp.Throughput
		sumPristine += g.Throughput
	}
	if !(sumImp < sumPristine) {
		t.Errorf("impairment arm cost nothing across the grid (%.6f vs %.6f)", sumImp, sumPristine)
	}
}
