// Package events is the live-observability spine of the serve daemon:
// a tiny in-process pub/sub hub that the fleet operator (and anything
// else with state transitions worth watching) publishes into, and that
// the /v1/events SSE endpoint drains per subscriber.
//
// The hub is deliberately goroutine-free. Publish stamps a stream
// sequence number under the hub lock and fans the event out with
// non-blocking sends into each subscriber's bounded channel; a
// subscriber whose buffer is full is evicted on the spot (its channel
// closed, its Dropped flag set) rather than ever back-pressuring the
// publisher. That single rule gives the two properties the operator
// loop needs: publishing never blocks, and there is no relay goroutine
// to leak when a client goes away.
package events

import "sync"

// Event kinds. One stream carries them all; SSE frames use the kind as
// the `event:` field so EventSource clients can addEventListener per
// kind.
const (
	// KindJob is a job-state transition: State is the new state
	// (queued, running, done, unplaced, canceled), At the instant the
	// transition is effective on the fleet's wall clock.
	KindJob = "job"
	// KindScenario is scenario activity: a timeline edge firing
	// (State "fired", At = the edge's stamp), a live fault applied
	// (State "applied"), or the whole timeline replaced or cleared
	// (State "replaced" / "cleared").
	KindScenario = "scenario"
	// KindPolicy is a scheduling-policy change on a fleet.
	KindPolicy = "policy"
	// KindRetire is the idle-barrier retirement of a batch of finished
	// jobs; Jobs lists the retired IDs in the journal's sorted order.
	KindRetire = "retire"
)

// Event is one observable state change. Events that mirror a journal
// record carry the record's sequence number in JournalSeq, so a
// subscriber can check the stream against the journal record-for-record
// (DESIGN.md decision 14: events publish strictly after the journal
// write, never before).
type Event struct {
	// Seq is the hub's stream sequence: monotone, gap-free per hub,
	// assigned under the hub lock at publish time. SSE uses it as the
	// frame id.
	Seq uint64 `json:"seq"`
	// At is the instant the change is effective, in the fleet's wall
	// seconds (the operator epoch), not the instant it was observed —
	// derived transitions are stamped with the schedule edge that
	// caused them, which is what makes a scripted stream reproducible.
	At   float64 `json:"at"`
	Kind string  `json:"kind"`
	// Fleet is the owning fleet's topology fingerprint.
	Fleet string `json:"fleet,omitempty"`
	// Job and State describe KindJob transitions.
	Job   string `json:"job,omitempty"`
	State string `json:"state,omitempty"`
	// Policy names the new policy on KindPolicy events.
	Policy string `json:"policy,omitempty"`
	// Scenario names the timeline on KindScenario replace events.
	Scenario string `json:"scenario,omitempty"`
	// Payload carries the scenario event for KindScenario, as the
	// wire-shaped map the API already speaks. Kept schemaless here so
	// the events package stays import-light.
	Payload any `json:"payload,omitempty"`
	// Jobs lists retired IDs on KindRetire events.
	Jobs []string `json:"jobs,omitempty"`
	// JournalSeq links the event to the journal record that made it
	// durable (0 for derived events with no record of their own, like
	// a job crossing its start edge).
	JournalSeq uint64 `json:"journal_seq,omitempty"`
}

// DefaultBuffer is the per-subscriber channel capacity when Subscribe
// is given a non-positive size. Big enough to absorb a burst of a full
// fleet retiring; small enough that an abandoned consumer is evicted
// long before it holds meaningful memory.
const DefaultBuffer = 256

// Hub fans events out to subscribers. The zero value is not usable;
// call NewHub.
type Hub struct {
	mu        sync.Mutex
	seq       uint64
	subs      map[*Subscriber]struct{}
	closed    bool
	published uint64
	dropped   uint64
}

// NewHub returns an empty hub ready for publishers and subscribers.
func NewHub() *Hub {
	return &Hub{subs: make(map[*Subscriber]struct{})}
}

// Subscribe registers a new subscriber with the given buffer capacity
// (<= 0 means DefaultBuffer). On a closed hub the returned subscriber
// is already closed: its channel reads as done immediately.
func (h *Hub) Subscribe(buf int) *Subscriber {
	if buf <= 0 {
		buf = DefaultBuffer
	}
	s := &Subscriber{hub: h, ch: make(chan Event, buf)}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(s.ch)
		return s
	}
	h.subs[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Publish stamps ev with the next stream sequence and delivers it to
// every subscriber that has room. A subscriber with a full buffer is
// evicted — unregistered and its channel closed — so Publish never
// blocks, no matter how slow or absent the consumers are. Publishing
// on a closed hub is a no-op.
func (h *Hub) Publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	ev.Seq = h.seq
	h.published++
	for s := range h.subs {
		select {
		case s.ch <- ev:
		default:
			// Slow consumer: cut it loose rather than stall the
			// publisher (the operator loop may be on the other end).
			delete(h.subs, s)
			s.dropped = true
			close(s.ch)
			h.dropped++
		}
	}
}

// Close evicts every subscriber (closing their channels) and marks the
// hub closed; later Publish calls are no-ops and later Subscribes
// return already-closed subscribers. Safe to call more than once.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		close(s.ch)
	}
}

// HubStats is a point-in-time health snapshot of the hub, surfaced on
// /v1/stats.
type HubStats struct {
	// Subscribers currently registered.
	Subscribers int `json:"subscribers"`
	// Published counts events accepted by Publish over the hub's life.
	Published uint64 `json:"published"`
	// Dropped counts subscribers evicted for falling behind.
	Dropped uint64 `json:"dropped"`
	// Seq is the last stream sequence assigned.
	Seq uint64 `json:"seq"`
}

// Stats reports the hub's counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{
		Subscribers: len(h.subs),
		Published:   h.published,
		Dropped:     h.dropped,
		Seq:         h.seq,
	}
}

// Subscriber is one registered consumer. Read Events until it closes;
// call Close when done (idempotent, also safe after eviction).
type Subscriber struct {
	hub     *Hub
	ch      chan Event
	dropped bool // guarded by hub.mu
}

// Events is the subscriber's delivery channel. It closes when the
// subscriber is evicted for falling behind, when it is Closed, or when
// the hub shuts down.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Close unregisters the subscriber and closes its channel. Safe to
// call concurrently with Publish and safe to call twice: the hub lock
// serializes the close against in-flight sends, and a subscriber
// already evicted (or on a closed hub) is left alone.
func (s *Subscriber) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return // already evicted, closed, or hub shut down
	}
	delete(h.subs, s)
	close(s.ch)
}

// Dropped reports whether the subscriber was evicted for falling
// behind (as opposed to closing itself or the hub shutting down).
func (s *Subscriber) Dropped() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.dropped
}
