package events

import (
	"sync"
	"testing"
)

func TestHubDeliversInOrder(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(8)
	for i := 0; i < 5; i++ {
		h.Publish(Event{Kind: KindJob, Job: "w1"})
	}
	for want := uint64(1); want <= 5; want++ {
		ev := <-sub.Events()
		if ev.Seq != want {
			t.Fatalf("seq = %d, want %d", ev.Seq, want)
		}
	}
	if st := h.Stats(); st.Published != 5 || st.Subscribers != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// A subscriber that never reads must not block the publisher: it is
// evicted the moment its buffer overflows, and the fast subscriber
// alongside it keeps receiving everything.
func TestHubEvictsSlowConsumer(t *testing.T) {
	h := NewHub()
	defer h.Close()
	slow := h.Subscribe(2)
	fast := h.Subscribe(16)

	for i := 0; i < 3; i++ { // third publish overflows slow's buffer
		h.Publish(Event{Kind: KindJob})
	}

	if !slow.Dropped() {
		t.Fatal("slow subscriber not marked dropped")
	}
	// slow's channel: two buffered events, then closed.
	n := 0
	for range slow.Events() {
		n++
	}
	if n != 2 {
		t.Fatalf("slow drained %d events before close, want 2", n)
	}
	for want := uint64(1); want <= 3; want++ {
		if ev := <-fast.Events(); ev.Seq != want {
			t.Fatalf("fast saw seq %d, want %d", ev.Seq, want)
		}
	}
	st := h.Stats()
	if st.Subscribers != 1 || st.Dropped != 1 {
		t.Fatalf("stats after eviction = %+v", st)
	}
	if fast.Dropped() {
		t.Fatal("fast subscriber wrongly marked dropped")
	}
}

// Close is safe against concurrent publishes and double closes; a
// closed subscriber stops receiving without disturbing others. Run
// under -race this is the hub's memory-safety test.
func TestHubConcurrentPublishSubscribeClose(t *testing.T) {
	h := NewHub()
	defer h.Close()
	// Subscribers register before any publish so every one of them
	// either receives events or gets evicted — a reader can never
	// block on a channel nothing will ever touch again.
	subs := make([]*Subscriber, 8)
	for c := range subs {
		subs[c] = h.Subscribe(4) // tiny buffer: evictions likely
	}
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Publish(Event{Kind: KindJob})
			}
		}()
	}
	for _, sub := range subs {
		wg.Add(1)
		go func(sub *Subscriber) {
			defer wg.Done()
			// Read a few events (or hit the eviction close), then walk
			// away mid-stream — the mix -race needs to see.
			for i := 0; i < 4; i++ {
				if _, ok := <-sub.Events(); !ok {
					return
				}
			}
			sub.Close()
			sub.Close() // double close must be safe
		}(sub)
	}
	wg.Wait()
	if st := h.Stats(); st.Published != 800 {
		t.Fatalf("published = %d, want 800", st.Published)
	}
}

func TestHubCloseUnblocksSubscribers(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(4)
	h.Publish(Event{Kind: KindPolicy, Policy: "priority"})
	h.Close()
	h.Close() // idempotent
	ev, ok := <-sub.Events()
	if !ok || ev.Policy != "priority" {
		t.Fatalf("buffered event lost on close: %+v ok=%v", ev, ok)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("channel still open after hub close")
	}
	if sub.Dropped() {
		t.Fatal("hub close must not count as a slow-consumer drop")
	}
	// Publishing and subscribing after close are harmless no-ops.
	h.Publish(Event{Kind: KindJob})
	late := h.Subscribe(1)
	if _, ok := <-late.Events(); ok {
		t.Fatal("late subscriber channel not closed")
	}
	late.Close() // must not panic on an unregistered subscriber
}

func TestSubscriberCloseFreesSlot(t *testing.T) {
	h := NewHub()
	defer h.Close()
	sub := h.Subscribe(1)
	sub.Close()
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers = %d after close, want 0", st.Subscribers)
	}
	h.Publish(Event{Kind: KindJob}) // must not panic on closed channel
}
