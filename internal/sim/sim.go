// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every timed component in the repository: the flow-level
// network simulator, the pipeline-schedule executor, and the end-to-end
// trainer. Time is virtual (measured in seconds as float64); events fire in
// (time, sequence) order so that simulations are fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since the start of the
// simulation.
type Time = float64

// Event is a scheduled callback. Events compare by (At, seq): two events at
// the same instant fire in scheduling order, which keeps runs deterministic.
type Event struct {
	At    Time
	Fn    func()
	seq   uint64
	index int // heap index; -1 once popped or cancelled
	dead  bool
}

// Cancel prevents a pending event from firing. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.dead = true
	}
}

// eventHeap implements container/heap over pending events.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	pending eventHeap
	nextSeq uint64
	fired   uint64
	running bool
	halted  bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.pending {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	ev := &Event{At: t, Fn: fn, seq: e.nextSeq}
	e.nextSeq++
	heap.Push(&e.pending, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event fired.
func (e *Engine) Step() bool {
	for len(e.pending) > 0 {
		ev := heap.Pop(&e.pending).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.At
		e.fired++
		ev.Fn()
		return true
	}
	return false
}

// Run fires events until none remain (or Halt is called), returning the
// final virtual time.
func (e *Engine) Run() Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil fires events with At <= deadline; the clock ends at
// min(deadline, last event time) if events remain, else at the last event.
// A Halt from inside an event callback stops the loop immediately, leaving
// the clock where the halting event fired.
func (e *Engine) RunUntil(deadline Time) Time {
	for !e.halted && len(e.pending) > 0 {
		// Peek: pending[0] is the earliest live event only after skipping
		// dead ones, so pop-and-check like Step does.
		next := e.pending[0]
		if next.dead {
			heap.Pop(&e.pending)
			continue
		}
		if next.At > deadline {
			break
		}
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Halt makes Run and RunUntil return before firing their next event. An
// event callback calls it when it can prove the rest of the simulation is
// not worth computing (branch-and-bound aborts); the queue is left as-is,
// so the simulation state is abandoned, not completed.
func (e *Engine) Halt() { e.halted = true }

// Halted reports whether Halt has been called since the last Reset.
func (e *Engine) Halted() bool { return e.halted }

// Reset returns the engine to time zero with no pending events.
func (e *Engine) Reset() {
	e.now = 0
	e.pending = nil
	e.nextSeq = 0
	e.fired = 0
	e.halted = false
}
