package sim

import "fmt"

// Process is a lightweight coroutine-style abstraction over the event
// engine: a sequence of timed steps expressed as callbacks. It exists so
// higher layers (pipeline executor, netsim flows) can express "do X, wait
// for Y, then do Z" without goroutines, keeping the simulation
// single-threaded and deterministic.
type Process struct {
	eng  *Engine
	name string
	done bool
	// waiters run when the process completes.
	waiters []func()
}

// NewProcess creates a named process bound to an engine. The name appears in
// diagnostics only.
func NewProcess(eng *Engine, name string) *Process {
	return &Process{eng: eng, name: name}
}

// Name returns the diagnostic name.
func (p *Process) Name() string { return p.name }

// Done reports whether Complete has been called.
func (p *Process) Done() bool { return p.done }

// Complete marks the process finished and fires all waiters at the current
// virtual time. Completing twice panics — it always indicates a scheduling
// bug in the caller.
func (p *Process) Complete() {
	if p.done {
		panic(fmt.Sprintf("sim: process %q completed twice", p.name))
	}
	p.done = true
	for _, w := range p.waiters {
		w()
	}
	p.waiters = nil
}

// OnComplete registers fn to run when the process completes. If the process
// is already done, fn runs immediately.
func (p *Process) OnComplete(fn func()) {
	if p.done {
		fn()
		return
	}
	p.waiters = append(p.waiters, fn)
}

// WaitGroup counts outstanding simulated activities and fires a callback
// when the count drops to zero, mirroring sync.WaitGroup for virtual time.
type WaitGroup struct {
	n    int
	fns  []func()
	fire bool
}

// Add increments the outstanding count by delta.
func (wg *WaitGroup) Add(delta int) {
	wg.n += delta
	if wg.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	wg.maybeFire()
}

// Done decrements the outstanding count by one.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// OnZero registers fn to run when the counter reaches zero. If already at
// zero, fn runs immediately.
func (wg *WaitGroup) OnZero(fn func()) {
	wg.fns = append(wg.fns, fn)
	wg.maybeFire()
}

func (wg *WaitGroup) maybeFire() {
	if wg.n != 0 || wg.fire {
		return
	}
	wg.fire = true
	fns := wg.fns
	wg.fns = nil
	for _, fn := range fns {
		fn()
	}
	wg.fire = false
}
