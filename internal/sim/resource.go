package sim

// Resource models an exclusive or counted resource in virtual time (for
// example, a GPU's compute engine, which runs one tasklet at a time, or a
// NIC send engine with a fixed number of channels). Acquisitions queue in
// FIFO order, preserving determinism.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	queue    []func()
}

// NewResource creates a resource with the given capacity (number of
// simultaneous holders). Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// InUse reports the number of current holders.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports how many acquisitions are waiting.
func (r *Resource) QueueLen() int { return len(r.queue) }

// Acquire requests one unit. fn runs (at the current virtual time or later)
// once a unit is available; the holder must call Release exactly once.
func (r *Resource) Acquire(fn func()) {
	if r.inUse < r.capacity {
		r.inUse++
		fn()
		return
	}
	r.queue = append(r.queue, fn)
}

// Release returns one unit and hands it to the longest-waiting acquirer,
// if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release without Acquire")
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next()
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for duration d of virtual time, then
// releases it and invokes then (which may be nil).
func (r *Resource) Use(d float64, then func()) {
	r.Acquire(func() {
		r.eng.After(d, func() {
			r.Release()
			if then != nil {
				then()
			}
		})
	})
}
