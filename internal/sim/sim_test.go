package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInOrder(t *testing.T) {
	eng := NewEngine()
	var got []float64
	for _, at := range []float64{3, 1, 2, 1.5} {
		at := at
		eng.At(at, func() { got = append(got, at) })
	}
	end := eng.Run()
	if end != 3 {
		t.Fatalf("final time = %v, want 3", end)
	}
	want := []float64{1, 1.5, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

func TestEngineTieBreakBySequence(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5, func() { got = append(got, i) })
	}
	eng.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	eng := NewEngine()
	var trace []float64
	var step func(depth int)
	step = func(depth int) {
		trace = append(trace, eng.Now())
		if depth < 5 {
			eng.After(1.5, func() { step(depth + 1) })
		}
	}
	eng.At(0, func() { step(0) })
	end := eng.Run()
	if end != 7.5 {
		t.Fatalf("end = %v, want 7.5", end)
	}
	if len(trace) != 6 {
		t.Fatalf("trace length = %d, want 6", len(trace))
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine()
	fired := false
	ev := eng.At(1, func() { fired = true })
	ev.Cancel()
	eng.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if eng.Pending() != 0 {
		t.Fatalf("pending = %d after run", eng.Pending())
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	eng := NewEngine()
	eng.At(5, func() {})
	eng.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	eng.At(1, func() {})
}

func TestRunUntil(t *testing.T) {
	eng := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		eng.At(at, func() { fired = append(fired, at) })
	}
	eng.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", fired)
	}
	if eng.Now() != 2.5 {
		t.Fatalf("now = %v, want 2.5", eng.Now())
	}
	eng.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %v after full run", fired)
	}
}

func TestEngineReset(t *testing.T) {
	eng := NewEngine()
	eng.At(1, func() {})
	eng.Run()
	eng.Reset()
	if eng.Now() != 0 || eng.Pending() != 0 || eng.Fired() != 0 {
		t.Fatal("reset did not clear engine state")
	}
	// Engine is reusable after Reset.
	ok := false
	eng.At(2, func() { ok = true })
	eng.Run()
	if !ok {
		t.Fatal("engine unusable after Reset")
	}
}

// Property: events always fire in nondecreasing time order regardless of
// insertion order.
func TestEventOrderingProperty(t *testing.T) {
	f := func(times []float64) bool {
		eng := NewEngine()
		var fired []float64
		for _, raw := range times {
			at := raw
			if at < 0 {
				at = -at
			}
			if at != at { // NaN guard
				continue
			}
			eng.At(at, func() { fired = append(fired, at) })
		}
		eng.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: an engine fires exactly as many events as were scheduled and
// not cancelled.
func TestEventCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		eng := NewEngine()
		n := rng.Intn(200)
		cancelled := 0
		count := 0
		events := make([]*Event, 0, n)
		for i := 0; i < n; i++ {
			events = append(events, eng.At(rng.Float64()*100, func() { count++ }))
		}
		for _, ev := range events {
			if rng.Float64() < 0.3 {
				ev.Cancel()
				cancelled++
			}
		}
		eng.Run()
		if count != n-cancelled {
			t.Fatalf("trial %d: fired %d, want %d", trial, count, n-cancelled)
		}
	}
}

func TestProcessCompletion(t *testing.T) {
	eng := NewEngine()
	p := NewProcess(eng, "p")
	ran := 0
	p.OnComplete(func() { ran++ })
	if p.Done() {
		t.Fatal("fresh process already done")
	}
	eng.At(3, func() { p.Complete() })
	eng.Run()
	if !p.Done() || ran != 1 {
		t.Fatalf("done=%v ran=%d", p.Done(), ran)
	}
	// Late waiter fires immediately.
	p.OnComplete(func() { ran++ })
	if ran != 2 {
		t.Fatalf("late waiter did not fire: ran=%d", ran)
	}
}

func TestProcessDoubleCompletePanics(t *testing.T) {
	p := NewProcess(NewEngine(), "p")
	p.Complete()
	defer func() {
		if recover() == nil {
			t.Fatal("double Complete did not panic")
		}
	}()
	p.Complete()
}

func TestWaitGroup(t *testing.T) {
	var wg WaitGroup
	fired := 0
	wg.Add(2)
	wg.OnZero(func() { fired++ })
	wg.Done()
	if fired != 0 {
		t.Fatal("fired before count reached zero")
	}
	wg.Done()
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
	// OnZero on an already-zero group runs immediately.
	wg.OnZero(func() { fired++ })
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
}

func TestResourceExclusive(t *testing.T) {
	eng := NewEngine()
	res := NewResource(eng, 1)
	var order []string
	start := func(name string, dur float64) {
		res.Acquire(func() {
			order = append(order, name+"+")
			eng.After(dur, func() {
				order = append(order, name+"-")
				res.Release()
			})
		})
	}
	eng.At(0, func() { start("a", 2) })
	eng.At(1, func() { start("b", 2) })
	end := eng.Run()
	want := []string{"a+", "a-", "b+", "b-"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 4 {
		t.Fatalf("end = %v, want 4 (serialized)", end)
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	eng := NewEngine()
	res := NewResource(eng, 2)
	done := 0
	for i := 0; i < 4; i++ {
		res.Use(1, func() { done++ })
	}
	end := eng.Run()
	if done != 4 {
		t.Fatalf("done = %d, want 4", done)
	}
	if end != 2 {
		t.Fatalf("end = %v, want 2 (4 jobs, capacity 2, 1s each)", end)
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	res := NewResource(NewEngine(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	res.Release()
}

// Property: with capacity c and n unit jobs of duration d, makespan is
// ceil(n/c)*d.
func TestResourceMakespanProperty(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%40) + 1
		c := int(cRaw%8) + 1
		eng := NewEngine()
		res := NewResource(eng, c)
		for i := 0; i < n; i++ {
			res.Use(1, nil)
		}
		end := eng.Run()
		want := float64((n + c - 1) / c)
		return end == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
