package pipeline

import (
	"math"
	"testing"
	"testing/quick"

	"holmes/internal/netsim"
	"holmes/internal/sim"
	"holmes/internal/topology"
)

func TestOneFOneBValidates(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {2, 4}, {4, 12}, {3, 8}, {8, 8}, {4, 2}} {
		s := OneFOneB(shape[0], shape[1])
		if err := s.Validate(); err != nil {
			t.Fatalf("1F1B p=%d m=%d: %v", shape[0], shape[1], err)
		}
	}
}

func TestGPipeValidates(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {2, 4}, {4, 12}} {
		s := GPipe(shape[0], shape[1])
		if err := s.Validate(); err != nil {
			t.Fatalf("GPipe p=%d m=%d: %v", shape[0], shape[1], err)
		}
	}
}

func TestOneFOneBMemoryAdvantage(t *testing.T) {
	p, m := 4, 12
	f := OneFOneB(p, m)
	g := GPipe(p, m)
	// 1F1B keeps at most min(p-s, m) in flight; GPipe keeps m everywhere.
	for s := 0; s < p; s++ {
		want := p - s
		if want > m {
			want = m
		}
		if got := f.MaxInFlight(s); got != want {
			t.Fatalf("1F1B stage %d in-flight = %d, want %d", s, got, want)
		}
		if got := g.MaxInFlight(s); got != m {
			t.Fatalf("GPipe stage %d in-flight = %d, want %d", s, got, m)
		}
	}
}

func TestOneFOneBFirstStageWarmup(t *testing.T) {
	s := OneFOneB(4, 8)
	// Stage 0 warms up with p-1 = 3 forwards before its first backward.
	ops := s.Ops[0]
	for i := 0; i < 3; i++ {
		if ops[i].Kind != Forward {
			t.Fatalf("op %d = %v, want forward warm-up", i, ops[i])
		}
	}
	if ops[3].Kind != Forward || ops[4].Kind != Backward {
		t.Fatalf("steady state should start F3 B0, got %v %v", ops[3], ops[4])
	}
	// Last stage alternates immediately.
	last := s.Ops[3]
	if last[0].Kind != Forward || last[1].Kind != Backward {
		t.Fatalf("last stage should start F0 B0, got %v %v", last[0], last[1])
	}
}

func TestValidateCatchesDeadlock(t *testing.T) {
	s := &Schedule{Stages: 2, Micro: 1, Name: "broken"}
	// Stage 0 wants its backward before stage 1 produced it, and stage 1
	// cannot forward because... actually make stage 0 do B0 then F0: B0
	// needs B0 from stage 1, which needs F1's forward of stage1 which
	// needs F0 of stage 0 — cycle.
	s.Ops = [][]Op{
		{{Backward, 0}, {Forward, 0}},
		{{Forward, 0}, {Backward, 0}},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("deadlocked schedule validated")
	}
}

func TestValidateCatchesDuplicatesAndGaps(t *testing.T) {
	s := &Schedule{Stages: 1, Micro: 2, Name: "dup"}
	s.Ops = [][]Op{{{Forward, 0}, {Forward, 0}, {Backward, 0}, {Backward, 1}}}
	if err := s.Validate(); err == nil {
		t.Fatal("duplicate op validated")
	}
	s2 := &Schedule{Stages: 1, Micro: 2, Ops: [][]Op{{{Forward, 0}}}}
	if err := s2.Validate(); err == nil {
		t.Fatal("short schedule validated")
	}
}

func TestBubbleFraction(t *testing.T) {
	if got := BubbleFraction(4, 12); math.Abs(got-3.0/15.0) > 1e-12 {
		t.Fatalf("BubbleFraction(4,12) = %v", got)
	}
	if got := BubbleFraction(1, 8); got != 0 {
		t.Fatalf("single stage bubble = %v, want 0", got)
	}
}

// Property: 1F1B schedules validate and drain for arbitrary shapes.
func TestOneFOneBValidProperty(t *testing.T) {
	f := func(pRaw, mRaw uint8) bool {
		p := int(pRaw%8) + 1
		m := int(mRaw%16) + 1
		s := OneFOneB(p, m)
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func execEnv() (*sim.Engine, *netsim.Fabric, *topology.Topology) {
	topo := topology.HybridEnv(4)
	eng := sim.NewEngine()
	fab := netsim.New(eng, topo, netsim.DefaultParams())
	return eng, fab, topo
}

func uniformCfg(p int, tf, tb float64, ranks []int) ExecConfig {
	f := make([]float64, p)
	b := make([]float64, p)
	for i := range f {
		f[i], b[i] = tf, tb
	}
	return ExecConfig{
		Ranks:           ranks,
		ForwardTime:     f,
		BackwardTime:    b,
		ActivationBytes: 0, // pure-compute tests
		Class:           netsim.Ether,
	}
}

func TestExecutorSingleStage(t *testing.T) {
	eng, fab, _ := execEnv()
	sched := OneFOneB(1, 4)
	dur, err := RunOne(eng, fab, sched, uniformCfg(1, 1, 2, []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	// 4 forwards + 4 backwards, no pipeline, no comm: 4*(1+2) = 12.
	if math.Abs(dur-12) > 1e-9 {
		t.Fatalf("single-stage iteration = %v, want 12", dur)
	}
}

func TestExecutorMatchesAnalyticNoComm(t *testing.T) {
	eng, fab, _ := execEnv()
	p, m := 4, 12
	sched := OneFOneB(p, m)
	tf, tb := 0.01, 0.02
	dur, err := RunOne(eng, fab, sched, uniformCfg(p, tf, tb, []int{0, 8, 16, 24}))
	if err != nil {
		t.Fatal(err)
	}
	// Zero-byte hops still pay per-message latency, so allow small slack
	// above the analytic pure-compute makespan.
	want := AnalyticIterTime(
		[]float64{tf, tf, tf, tf}, []float64{tb, tb, tb, tb}, 0, m)
	if dur < want-1e-9 || dur > want*1.05 {
		t.Fatalf("1F1B makespan %v, analytic %v", dur, want)
	}
}

func TestExecutorBubbleGrowsWithStages(t *testing.T) {
	// Same total work, more stages -> larger bubble share.
	m := 8
	total := 0.24 // seconds of F+B per micro-batch across the whole model
	iter := func(p int) float64 {
		eng, fab, _ := execEnv()
		ranks := []int{0, 8, 16, 24}[:p]
		tf := total / 3 / float64(p)
		tb := 2 * total / 3 / float64(p)
		dur, err := RunOne(eng, fab, OneFOneB(p, m), uniformCfg(p, tf, tb, ranks))
		if err != nil {
			t.Fatal(err)
		}
		return dur
	}
	t1, t2, t4 := iter(1), iter(2), iter(4)
	// Pipelining the fixed work across more stages shortens the iteration...
	if !(t1 > t2 && t2 > t4) {
		t.Fatalf("pipelining must shorten iterations: %v %v %v", t1, t2, t4)
	}
	// ...but per-GPU utilization falls as the bubble share (p-1)/(m+p-1)
	// grows.
	util := func(p int, dur float64) float64 {
		return float64(m) * total / float64(p) / dur
	}
	u1, u2, u4 := util(1, t1), util(2, t2), util(4, t4)
	if !(u1 > u2 && u2 > u4) {
		t.Fatalf("bubble share must erode utilization: %v %v %v", u1, u2, u4)
	}
	// Quantitatively: utilization ≈ m/(m+p-1).
	if math.Abs(u4-8.0/11.0) > 0.02 {
		t.Fatalf("p=4 utilization %v, want ~%v", u4, 8.0/11.0)
	}
}

func TestExecutorSlowStageDominates(t *testing.T) {
	// Uneven stages: the slow stage sets the beat. Mirrors why uniform
	// partition is wrong on heterogeneous clusters (§3.3).
	eng, fab, _ := execEnv()
	p, m := 2, 8
	cfg := uniformCfg(p, 0, 0, []int{0, 16})
	cfg.ForwardTime = []float64{0.01, 0.03}
	cfg.BackwardTime = []float64{0.02, 0.06}
	dur, err := RunOne(eng, fab, OneFOneB(p, m), cfg)
	if err != nil {
		t.Fatal(err)
	}
	lower := float64(m) * 0.09 // slow stage busy time
	if dur < lower {
		t.Fatalf("makespan %v below slow-stage busy time %v", dur, lower)
	}
	upper := float64(m)*0.09 + 0.03 + 0.06 + 0.01
	if dur > upper {
		t.Fatalf("makespan %v above expected bound %v", dur, upper)
	}
}

func TestExecutorCommDelaysPipeline(t *testing.T) {
	// Cross-cluster hop at Ethernet speed must stretch the iteration
	// versus free communication.
	run := func(bytes float64) float64 {
		eng, fab, _ := execEnv()
		cfg := uniformCfg(2, 0.005, 0.01, []int{0, 16}) // IB node -> RoCE node
		cfg.ActivationBytes = bytes
		dur, err := RunOne(eng, fab, OneFOneB(2, 8), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dur
	}
	free := run(0)
	heavy := run(50e6) // 50 MB per hop over ~2.75 GB/s Ethernet
	if heavy <= free*1.2 {
		t.Fatalf("50MB hops should visibly stretch the pipeline: %v vs %v", heavy, free)
	}
}

func TestExecutorBackwardHook(t *testing.T) {
	eng, fab, _ := execEnv()
	p, m := 2, 4
	var events []int
	cfg := uniformCfg(p, 0.001, 0.002, []int{0, 8})
	cfg.OnBackwardDone = func(stage, micro int, now sim.Time) {
		events = append(events, stage*100+micro)
	}
	if _, err := RunOne(eng, fab, OneFOneB(p, m), cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) != p*m {
		t.Fatalf("backward hook fired %d times, want %d", len(events), p*m)
	}
}

func TestExecutorGPipeSlowerThanOneFOneBWithComm(t *testing.T) {
	// With communication in the path, 1F1B is no slower than GPipe for the
	// same shape (and typically faster end-to-end in steady state).
	shape := func(s *Schedule) float64 {
		eng, fab, _ := execEnv()
		cfg := uniformCfg(2, 0.004, 0.008, []int{0, 16})
		cfg.ActivationBytes = 1e6
		dur, err := RunOne(eng, fab, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return dur
	}
	f := shape(OneFOneB(2, 8))
	g := shape(GPipe(2, 8))
	// The two flush schedules share the same bubble structure, so their
	// makespans agree to within a few percent; 1F1B's advantage is the
	// bounded in-flight memory checked in TestOneFOneBMemoryAdvantage.
	if f > g*1.08 || g > f*1.08 {
		t.Fatalf("1F1B (%v) and GPipe (%v) diverged beyond bubble equivalence", f, g)
	}
}

func TestExecutorConfigErrors(t *testing.T) {
	eng, fab, _ := execEnv()
	sched := OneFOneB(2, 2)
	bad := []ExecConfig{
		{Ranks: []int{0}, ForwardTime: []float64{1, 1}, BackwardTime: []float64{1, 1}},
		{Ranks: []int{0, 8}, ForwardTime: []float64{1}, BackwardTime: []float64{1, 1}},
		{Ranks: []int{0, 8}, ForwardTime: []float64{1, -1}, BackwardTime: []float64{1, 1}},
		{Ranks: []int{0, 8}, ForwardTime: []float64{1, 1}, BackwardTime: []float64{1, 1}, ActivationBytes: -5},
	}
	for i, cfg := range bad {
		if _, err := NewExecutor(eng, fab, sched, cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestAnalyticIterTimePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AnalyticIterTime(nil, nil, 0, 4)
}
