package pipeline

import (
	"fmt"

	"holmes/internal/netsim"
	"holmes/internal/sim"
)

// ExecConfig parameterizes one pipeline group's execution on the fabric.
type ExecConfig struct {
	// Ranks lists the group's devices, one per stage, in stage order (a row
	// of the [PP] matrix).
	Ranks []int
	// ForwardTime and BackwardTime give per-stage compute seconds per
	// micro-batch (unequal under the self-adapting partition).
	ForwardTime, BackwardTime []float64
	// ActivationBytes is the payload of each inter-stage transfer (both
	// the forward activation and the backward gradient, which are the same
	// size for transformer pipelines).
	ActivationBytes float64
	// Class is the network class for inter-stage hops (Ether for
	// cross-cluster pipelines under Automatic NIC Selection).
	Class netsim.Class
	// OnBackwardDone, if set, fires when a stage finishes a micro-batch's
	// backward pass — the hook the overlapped distributed optimizer uses to
	// start gradient reduce-scatter buckets during the pipeline.
	OnBackwardDone func(stage, micro int, now sim.Time)
	// OnOpDone, if set, fires after every op completes with the stage's
	// remaining forward and backward op counts. A stage runs its ops
	// serially, so the counts bound the stage's remaining busy time from
	// below — the hook branch-and-bound callers use to prove an iteration
	// cannot finish in time and halt the engine early.
	OnOpDone func(stage, remForward, remBackward int, now sim.Time)
	// OnDone fires when the whole schedule (all stages) completes.
	OnDone func(now sim.Time)
}

// Executor replays a Schedule on the DES fabric.
type Executor struct {
	eng   *sim.Engine
	fab   *netsim.Fabric
	sched *Schedule
	cfg   ExecConfig

	pos      []int    // index of the first unexecuted op per stage
	executed [][]bool // per stage, per op index: already run out of order
	busy     []bool   // stage compute engine in use
	remF     []int    // forwards not yet completed, per stage
	remB     []int    // backwards not yet completed, per stage
	fReady   [][]bool // activation for F_{s,i} arrived
	bReady   [][]bool // gradient for B_{s,i} arrived
	fDone    [][]bool
	done     int
	total    int
	finished bool
}

// NewExecutor validates the configuration against the schedule and
// prepares an executor. Call Start to begin at the engine's current time.
func NewExecutor(eng *sim.Engine, fab *netsim.Fabric, sched *Schedule, cfg ExecConfig) (*Executor, error) {
	p := sched.Stages
	if len(cfg.Ranks) != p {
		return nil, fmt.Errorf("pipeline: %d ranks for %d stages", len(cfg.Ranks), p)
	}
	if len(cfg.ForwardTime) != p || len(cfg.BackwardTime) != p {
		return nil, fmt.Errorf("pipeline: compute-time vectors must have %d entries", p)
	}
	for s := 0; s < p; s++ {
		if cfg.ForwardTime[s] < 0 || cfg.BackwardTime[s] < 0 {
			return nil, fmt.Errorf("pipeline: negative compute time at stage %d", s)
		}
	}
	if cfg.ActivationBytes < 0 {
		return nil, fmt.Errorf("pipeline: negative activation size")
	}
	e := &Executor{
		eng: eng, fab: fab, sched: sched, cfg: cfg,
		pos:      make([]int, p),
		executed: make([][]bool, p),
		busy:     make([]bool, p),
		remF:     make([]int, p),
		remB:     make([]int, p),
		total:    p * 2 * sched.Micro,
	}
	for s := 0; s < p; s++ {
		e.remF[s] = sched.Micro
		e.remB[s] = sched.Micro
	}
	e.fReady = make([][]bool, p)
	e.bReady = make([][]bool, p)
	e.fDone = make([][]bool, p)
	for s := 0; s < p; s++ {
		e.executed[s] = make([]bool, len(sched.Ops[s]))
		e.fReady[s] = make([]bool, sched.Micro)
		e.bReady[s] = make([]bool, sched.Micro)
		e.fDone[s] = make([]bool, sched.Micro)
		if s == 0 {
			for i := range e.fReady[s] {
				e.fReady[s][i] = true // stage 0 reads micro-batches locally
			}
		}
	}
	return e, nil
}

// Start schedules the first ops. The executor then drives itself through
// the engine until every stage drains, firing OnDone once.
func (e *Executor) Start() {
	for s := 0; s < e.sched.Stages; s++ {
		e.tryAdvance(s)
	}
}

// ready reports whether an op's input dependency has arrived.
func (e *Executor) ready(s int, op Op) bool {
	switch op.Kind {
	case Forward:
		return e.fReady[s][op.Micro]
	default: // Backward
		if s == e.sched.Stages-1 {
			return e.fDone[s][op.Micro]
		}
		return e.bReady[s][op.Micro]
	}
}

// tryAdvance launches the stage's next runnable op if the stage is idle.
//
// The schedule order is authoritative, with one relaxation real 1F1B
// implementations exploit when transfers are in flight: if the scheduled
// op is a forward whose activation has not arrived yet, a *later backward*
// whose gradient is already here may run first. Running a backward early
// only releases activation memory, so the 1F1B residency bound still
// holds; forwards are never promoted past pending backwards (that would
// grow memory toward GPipe's footprint).
func (e *Executor) tryAdvance(s int) {
	if e.busy[s] {
		return
	}
	ops := e.sched.Ops[s]
	for idx := e.pos[s]; idx < len(ops); idx++ {
		if e.executed[s][idx] {
			if idx == e.pos[s] {
				e.pos[s]++
			}
			continue
		}
		op := ops[idx]
		if e.ready(s, op) {
			e.launch(s, idx, op)
			return
		}
		if op.Kind == Backward {
			// A blocked backward fences the stage: promoting a later
			// forward would exceed the 1F1B memory bound.
			return
		}
		// Blocked forward: keep scanning for a ready backward.
	}
}

func (e *Executor) launch(s, idx int, op Op) {
	e.executed[s][idx] = true
	if idx == e.pos[s] {
		e.pos[s]++
	}
	e.busy[s] = true
	dur := e.cfg.ForwardTime[s]
	if op.Kind == Backward {
		dur = e.cfg.BackwardTime[s]
	}
	e.eng.After(dur, func() { e.complete(s, op) })
}

func (e *Executor) complete(s int, op Op) {
	e.busy[s] = false
	p := e.sched.Stages
	if op.Kind == Forward {
		e.remF[s]--
	} else {
		e.remB[s]--
	}
	switch op.Kind {
	case Forward:
		e.fDone[s][op.Micro] = true
		if s+1 < p {
			e.sendTo(s, s+1, func() {
				e.fReady[s+1][op.Micro] = true
				e.tryAdvance(s + 1)
			})
		}
	case Backward:
		if e.cfg.OnBackwardDone != nil {
			e.cfg.OnBackwardDone(s, op.Micro, e.eng.Now())
		}
		if s > 0 {
			e.sendTo(s, s-1, func() {
				e.bReady[s-1][op.Micro] = true
				e.tryAdvance(s - 1)
			})
		}
	}
	e.done++
	if e.done == e.total && !e.finished {
		e.finished = true
		if e.cfg.OnDone != nil {
			e.cfg.OnDone(e.eng.Now())
		}
	}
	if e.cfg.OnOpDone != nil {
		e.cfg.OnOpDone(s, e.remF[s], e.remB[s], e.eng.Now())
	}
	e.tryAdvance(s)
}

func (e *Executor) sendTo(from, to int, arrived func()) {
	src, dst := e.cfg.Ranks[from], e.cfg.Ranks[to]
	e.fab.StartFlow(src, dst, e.cfg.ActivationBytes, e.cfg.Class, arrived)
}

// RunOne is a convenience wrapper: build, start, and run an executor to
// completion on a fresh engine pass, returning the iteration makespan.
// The engine must have no unrelated pending events.
func RunOne(eng *sim.Engine, fab *netsim.Fabric, sched *Schedule, cfg ExecConfig) (sim.Time, error) {
	var end sim.Time
	prev := cfg.OnDone
	cfg.OnDone = func(now sim.Time) {
		end = now
		if prev != nil {
			prev(now)
		}
	}
	ex, err := NewExecutor(eng, fab, sched, cfg)
	if err != nil {
		return 0, err
	}
	start := eng.Now()
	ex.Start()
	eng.Run()
	return end - start, nil
}
