// Package pipeline implements pipeline-model-parallel schedules: GPipe and
// the PipeDream-Flush / 1F1B schedule the paper builds on ("The
// implementation of our pipeline parallelism is similar to PipeDream-Flush
// [19]. We use periodic pipeline flushes to maintain the synchronization
// of optimizer steps", §3.1.1).
//
// A Schedule is the static per-stage order of forward/backward micro-batch
// operations; Executor replays a schedule on the discrete-event fabric,
// with per-stage compute times (which the self-adapting partition makes
// unequal) and per-hop activation/gradient transfers, so pipeline bubbles
// and communication stalls emerge rather than being assumed.
package pipeline

import "fmt"

// OpKind distinguishes forward from backward micro-batch work.
type OpKind int

const (
	Forward OpKind = iota
	Backward
)

// String names the op kind.
func (k OpKind) String() string {
	if k == Forward {
		return "F"
	}
	return "B"
}

// Op is one unit of stage work on one micro-batch.
type Op struct {
	Kind  OpKind
	Micro int
}

func (o Op) String() string { return fmt.Sprintf("%v%d", o.Kind, o.Micro) }

// Schedule is a static pipeline execution plan: Ops[s] is the ordered work
// list of stage s.
type Schedule struct {
	Stages int
	Micro  int
	Ops    [][]Op
	Name   string
}

// OneFOneB builds the PipeDream-Flush schedule for p stages and m
// micro-batches: stage s runs min(p−1−s, m) warm-up forwards, then
// alternates one-forward-one-backward, then drains the remaining
// backwards. Peak resident activations per stage are ≤ min(p−s, m), which
// is the schedule's memory advantage over GPipe.
func OneFOneB(p, m int) *Schedule {
	validateShape(p, m)
	s := &Schedule{Stages: p, Micro: m, Name: "1F1B"}
	for st := 0; st < p; st++ {
		warmup := p - 1 - st
		if warmup > m {
			warmup = m
		}
		var ops []Op
		nextF, nextB := 0, 0
		for i := 0; i < warmup; i++ {
			ops = append(ops, Op{Forward, nextF})
			nextF++
		}
		for nextB < m {
			if nextF < m {
				ops = append(ops, Op{Forward, nextF})
				nextF++
			}
			ops = append(ops, Op{Backward, nextB})
			nextB++
		}
		s.Ops = append(s.Ops, ops)
	}
	return s
}

// GPipe builds the all-forwards-then-all-backwards schedule, the baseline
// with m resident micro-batches per stage.
func GPipe(p, m int) *Schedule {
	validateShape(p, m)
	s := &Schedule{Stages: p, Micro: m, Name: "GPipe"}
	for st := 0; st < p; st++ {
		var ops []Op
		for i := 0; i < m; i++ {
			ops = append(ops, Op{Forward, i})
		}
		for i := 0; i < m; i++ {
			ops = append(ops, Op{Backward, i})
		}
		s.Ops = append(s.Ops, ops)
	}
	return s
}

func validateShape(p, m int) {
	if p <= 0 || m <= 0 {
		panic(fmt.Sprintf("pipeline: bad shape p=%d m=%d", p, m))
	}
}

// Validate checks that the schedule is complete (each stage runs every
// micro-batch forward and backward exactly once) and causally executable:
// a topological replay respecting inter-stage dependencies (F_{s,i} needs
// F_{s−1,i}; B_{s,i} needs B_{s+1,i}; B on the last stage needs its own F)
// and intra-stage order must terminate.
func (s *Schedule) Validate() error {
	if len(s.Ops) != s.Stages {
		return fmt.Errorf("pipeline: %d op lists for %d stages", len(s.Ops), s.Stages)
	}
	for st, ops := range s.Ops {
		if len(ops) != 2*s.Micro {
			return fmt.Errorf("pipeline: stage %d has %d ops, want %d", st, len(ops), 2*s.Micro)
		}
		seen := map[Op]bool{}
		for _, op := range ops {
			if op.Micro < 0 || op.Micro >= s.Micro {
				return fmt.Errorf("pipeline: stage %d op %v out of range", st, op)
			}
			if seen[op] {
				return fmt.Errorf("pipeline: stage %d repeats %v", st, op)
			}
			seen[op] = true
		}
	}
	// Causal replay.
	pos := make([]int, s.Stages)
	fDone := make([][]bool, s.Stages)
	bDone := make([][]bool, s.Stages)
	for st := range fDone {
		fDone[st] = make([]bool, s.Micro)
		bDone[st] = make([]bool, s.Micro)
	}
	remaining := s.Stages * 2 * s.Micro
	for remaining > 0 {
		progressed := false
		for st := 0; st < s.Stages; st++ {
			for pos[st] < len(s.Ops[st]) {
				op := s.Ops[st][pos[st]]
				ready := false
				switch op.Kind {
				case Forward:
					ready = st == 0 || fDone[st-1][op.Micro]
				case Backward:
					if st == s.Stages-1 {
						ready = fDone[st][op.Micro]
					} else {
						ready = bDone[st+1][op.Micro]
					}
				}
				if !ready {
					break
				}
				if op.Kind == Forward {
					fDone[st][op.Micro] = true
				} else {
					bDone[st][op.Micro] = true
				}
				pos[st]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return fmt.Errorf("pipeline: schedule deadlocks (stages stuck at %v)", pos)
		}
	}
	return nil
}

// MaxInFlight returns the peak number of micro-batches resident on a stage
// (forwards executed whose backwards have not yet run) under the
// schedule's own order — the activation-memory driver.
func (s *Schedule) MaxInFlight(stage int) int {
	inFlight, peak := 0, 0
	for _, op := range s.Ops[stage] {
		if op.Kind == Forward {
			inFlight++
			if inFlight > peak {
				peak = inFlight
			}
		} else {
			inFlight--
		}
	}
	return peak
}

// BubbleFraction returns the classic analytic pipeline bubble share for a
// flush-based schedule with equal stages: (p−1)/(m+p−1).
func BubbleFraction(p, m int) float64 {
	return float64(p-1) / float64(m+p-1)
}

// AnalyticIterTime estimates one iteration of a flush-based pipeline with
// per-stage per-micro-batch compute times tf[s]+tb[s] and a per-hop
// communication time comm: (m−1) beats of the slowest stage plus one full
// traversal of all stages and hops. It is the planner's quick estimate;
// the Executor is the ground truth.
func AnalyticIterTime(tf, tb []float64, comm float64, m int) float64 {
	p := len(tf)
	if p == 0 || len(tb) != p || m <= 0 {
		panic("pipeline: bad analytic inputs")
	}
	beat := 0.0
	sum := 0.0
	for s := 0; s < p; s++ {
		t := tf[s] + tb[s]
		if t > beat {
			beat = t
		}
		sum += t
	}
	return float64(m-1)*beat + sum + 2*float64(p-1)*comm
}
