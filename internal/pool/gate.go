package pool

import (
	"context"
	"sync/atomic"
)

// Gate is the admission controller of the serving layer: at most
// maxInFlight callers hold the gate at once, at most maxQueue more wait
// for a slot, and everything beyond that is rejected immediately so the
// caller can shed load (HTTP 429) instead of letting latency grow without
// bound. It lives next to Run because both express the same policy —
// bounded concurrency with explicit hand-off — at the two layers that
// need it (request admission and cell fan-out).
type Gate struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	rejected atomic.Uint64
	canceled atomic.Uint64
}

// NewGate builds a gate admitting maxInFlight concurrent holders
// (clamped to >= 1) with a wait queue of maxQueue (clamped to >= 0).
func NewGate(maxInFlight, maxQueue int) *Gate {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{slots: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// Enter tries to acquire an admission slot: immediately if one is free,
// otherwise by waiting in the queue when it has room. It returns false —
// without blocking — when both the slots and the queue are full, and when
// ctx is done before a slot frees. Every true return must be paired with
// Leave.
//
// A caller whose context is already done never gets a slot, even when
// one is free: select picks ready cases at random, so without the
// re-check a handler could win the race between a freed slot and
// ctx.Done() and burn a full computation on a client that already
// disconnected. Both acquisition arms re-check and hand the slot back.
func (g *Gate) Enter(ctx context.Context) bool {
	select {
	case g.slots <- struct{}{}:
		return g.recheck(ctx)
	default:
	}
	if g.queued.Add(1) > g.maxQueue {
		g.queued.Add(-1)
		g.rejected.Add(1)
		return false
	}
	defer g.queued.Add(-1)
	select {
	case g.slots <- struct{}{}:
		return g.recheck(ctx)
	case <-ctx.Done():
		// The client gave up while the queue still had room — that is an
		// abort, not saturation, and must not inflate the backpressure
		// counter an operator sizes the gate by.
		g.canceled.Add(1)
		return false
	}
}

// recheck confirms the caller is still alive after a slot was acquired,
// releasing the slot and counting the abort otherwise.
func (g *Gate) recheck(ctx context.Context) bool {
	if ctx.Err() == nil {
		return true
	}
	g.Leave()
	g.canceled.Add(1)
	return false
}

// Leave releases a slot acquired by a successful Enter.
func (g *Gate) Leave() { <-g.slots }

// InFlight reports the number of currently admitted holders.
func (g *Gate) InFlight() int { return len(g.slots) }

// Queued reports the number of callers waiting for a slot.
func (g *Gate) Queued() int { return int(g.queued.Load()) }

// Rejected reports the Enter calls turned away because slots and queue
// were both full (true saturation).
func (g *Gate) Rejected() uint64 { return g.rejected.Load() }

// Canceled reports the Enter calls abandoned by their own context while
// waiting in the queue (client aborts, not saturation).
func (g *Gate) Canceled() uint64 { return g.canceled.Load() }
