// Package pool provides the bounded worker pool the concurrent layers
// share: experiment grids, the pipeline-degree search, and any future
// fan-out over independent simulations. One implementation keeps the
// clamping and hand-off semantics identical everywhere.
package pool

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0, n) on at most workers
// goroutines (clamped to [1, n]) and returns when all calls finish.
// Callers provide determinism by writing results at index i; Run itself
// guarantees only that every index runs at most once and that, absent a
// panic, every index runs exactly once.
//
// A panic inside fn stops the dispatch of further indices, waits for the
// in-flight calls to drain, and re-panics the first captured value on the
// caller's goroutine — a panicking cell must crash the caller, not a
// detached worker (which would kill the whole process with no recovery
// point).
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	var panicked atomic.Bool
	var panicVal any
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				if panicked.CompareAndSwap(false, true) {
					panicVal = r
				}
			}
		}()
		fn(i)
	}
	if workers == 1 {
		for i := 0; i < n && !panicked.Load(); i++ {
			call(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !panicked.Load() {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					call(i)
				}
			}()
		}
		wg.Wait()
	}
	if panicked.Load() {
		panic(panicVal)
	}
}
