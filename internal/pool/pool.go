// Package pool provides the bounded worker pool the concurrent layers
// share: experiment grids, the pipeline-degree search, and any future
// fan-out over independent simulations. One implementation keeps the
// clamping and hand-off semantics identical everywhere.
package pool

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0, n) on at most workers
// goroutines (clamped to [1, n]) and returns when all calls finish.
// Callers provide determinism by writing results at index i; Run itself
// guarantees only that every index runs exactly once.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
