package pool

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGateImmediateAdmission(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if !g.Enter(ctx) || !g.Enter(ctx) {
		t.Fatal("free slots must admit immediately")
	}
	if g.InFlight() != 2 {
		t.Fatalf("in-flight %d, want 2", g.InFlight())
	}
	// Slots and queue both full: reject without blocking.
	if g.Enter(ctx) {
		t.Fatal("saturated gate admitted a caller")
	}
	if g.Rejected() != 1 {
		t.Fatalf("rejected %d, want 1", g.Rejected())
	}
	g.Leave()
	if !g.Enter(ctx) {
		t.Fatal("freed slot must re-admit")
	}
	g.Leave()
	g.Leave()
	if g.InFlight() != 0 {
		t.Fatalf("in-flight %d after full drain", g.InFlight())
	}
}

func TestGateQueueHandsOff(t *testing.T) {
	g := NewGate(1, 1)
	ctx := context.Background()
	if !g.Enter(ctx) {
		t.Fatal("first enter")
	}
	admitted := make(chan bool, 1)
	go func() { admitted <- g.Enter(ctx) }()
	// Wait for the goroutine to be queued, then release the slot: the
	// waiter must be admitted.
	for i := 0; g.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.Queued() != 1 {
		t.Fatalf("queued %d, want 1", g.Queued())
	}
	// A third caller overflows the queue and is rejected immediately.
	if g.Enter(ctx) {
		t.Fatal("queue overflow admitted")
	}
	g.Leave()
	if !<-admitted {
		t.Fatal("queued caller was not admitted after Leave")
	}
	g.Leave()
}

func TestGateContextCancel(t *testing.T) {
	g := NewGate(1, 4)
	if !g.Enter(context.Background()) {
		t.Fatal("first enter")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() { done <- g.Enter(ctx) }()
	for i := 0; g.Queued() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if <-done {
		t.Fatal("cancelled waiter was admitted")
	}
	if g.Queued() != 0 {
		t.Fatalf("queued %d after cancel, want 0", g.Queued())
	}
	// A client abort is not saturation: it lands in Canceled, never in
	// Rejected (the counter operators size the gate by).
	if g.Canceled() != 1 || g.Rejected() != 0 {
		t.Fatalf("canceled %d rejected %d, want 1/0", g.Canceled(), g.Rejected())
	}
	g.Leave()
}

// TestGateDeadContextFastPath covers the immediate-admission arm: a
// caller whose client already disconnected must not get a slot even when
// one is free — the handler would burn a full plan/search on a dead
// connection. The slot must go back to the pool, and the abort counts
// under Canceled, not Rejected.
func TestGateDeadContextFastPath(t *testing.T) {
	g := NewGate(2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if g.Enter(ctx) {
		t.Fatal("dead caller was admitted through the fast path")
	}
	if g.Canceled() != 1 || g.Rejected() != 0 {
		t.Fatalf("canceled %d rejected %d, want 1/0", g.Canceled(), g.Rejected())
	}
	if g.InFlight() != 0 {
		t.Fatalf("in-flight %d: the dead caller leaked its slot", g.InFlight())
	}
	// The handed-back slot still serves live callers to the full bound.
	live := context.Background()
	if !g.Enter(live) || !g.Enter(live) {
		t.Fatal("released slot did not re-admit live callers")
	}
	g.Leave()
	g.Leave()
}

// TestGateDeadContextQueuedPath covers the race the queued arm can win:
// a freed slot and ctx.Done() become ready together, select may pick the
// slot, and without the re-check a dead caller would be admitted. With
// both cases ready the outcome must always be a refusal with the slot
// returned.
func TestGateDeadContextQueuedPath(t *testing.T) {
	for i := 0; i < 200; i++ {
		g := NewGate(1, 4)
		if !g.Enter(context.Background()) {
			t.Fatal("first enter")
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan bool, 1)
		go func() { done <- g.Enter(ctx) }()
		for j := 0; g.Queued() == 0 && j < 1000; j++ {
			time.Sleep(time.Millisecond)
		}
		// Make both select cases ready: cancel, then free the slot.
		cancel()
		g.Leave()
		if <-done {
			t.Fatal("dead waiter was admitted")
		}
		if g.Canceled() != 1 {
			t.Fatalf("canceled %d, want 1", g.Canceled())
		}
		if !g.Enter(context.Background()) {
			t.Fatal("slot leaked: a live caller could not enter an empty gate")
		}
		g.Leave()
	}
}

func TestGateClamps(t *testing.T) {
	g := NewGate(0, -5) // clamped to 1 slot, 0 queue
	if !g.Enter(context.Background()) {
		t.Fatal("clamped gate must admit one")
	}
	if g.Enter(context.Background()) {
		t.Fatal("clamped gate admitted two")
	}
	g.Leave()
}

// TestGateConcurrencyBound is the -race arm: the in-flight count never
// exceeds the bound, and every admitted caller completes.
func TestGateConcurrencyBound(t *testing.T) {
	const bound = 4
	g := NewGate(bound, 1024)
	var cur, peak, admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !g.Enter(context.Background()) {
				return
			}
			defer g.Leave()
			admitted.Add(1)
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		}()
	}
	wg.Wait()
	if peak.Load() > bound {
		t.Fatalf("peak in-flight %d exceeds bound %d", peak.Load(), bound)
	}
	if admitted.Load() != 64 {
		t.Fatalf("admitted %d of 64 (queue was large enough for all)", admitted.Load())
	}
}
