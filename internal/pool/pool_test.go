package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Every index must run exactly once, whatever the worker count.
func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		Run(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// The pool must never run more than `workers` calls at once.
func TestRunRespectsWorkerBound(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		var inFlight, peak atomic.Int32
		var mu sync.Mutex
		Run(64, workers, func(int) {
			cur := inFlight.Add(1)
			mu.Lock()
			if cur > peak.Load() {
				peak.Store(cur)
			}
			mu.Unlock()
			// Let other workers pile in before decrementing so a bound
			// violation actually has a window to show up.
			for j := 0; j < 1000; j++ {
				_ = j
			}
			inFlight.Add(-1)
		})
		if p := peak.Load(); p > int32(workers) {
			t.Fatalf("workers=%d: observed %d concurrent calls", workers, p)
		}
	}
}

// Zero and negative item counts are no-ops, as is any worker count with
// them; more workers than items must clamp, not spin or deadlock.
func TestRunEdgeCases(t *testing.T) {
	ran := 0
	Run(0, 8, func(int) { ran++ })
	Run(-3, 8, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("fn ran %d times for n<=0", ran)
	}
	var n32 atomic.Int32
	Run(3, 100, func(int) { n32.Add(1) }) // n < workers
	if n32.Load() != 3 {
		t.Fatalf("n=3 workers=100: ran %d", n32.Load())
	}
	Run(5, 0, func(int) { n32.Add(1) }) // workers < 1 clamps to 1
	if n32.Load() != 8 {
		t.Fatalf("workers=0: total ran %d, want 8", n32.Load())
	}
}

// A panic in fn must surface on the caller's goroutine with the original
// value, both on the sequential and the concurrent path.
func TestRunPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			Run(16, workers, func(i int) {
				if i == 5 {
					panic("boom")
				}
			})
		}()
	}
}

// After a panic the pool stops dispatching new indices (best effort): the
// total number of executed calls stays well short of n when the first
// index panics on the sequential path.
func TestRunPanicStopsDispatchSequential(t *testing.T) {
	ran := 0
	func() {
		defer func() { _ = recover() }()
		Run(100, 1, func(i int) {
			ran++
			if i == 0 {
				panic("early")
			}
		})
	}()
	if ran != 1 {
		t.Fatalf("sequential run continued after panic: %d calls", ran)
	}
}
